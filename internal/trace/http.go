package trace

import (
	"net/http"
	"strconv"
	"strings"

	"inaudible/internal/telemetry"
)

// SessionList is the /sessions response body. When a page fills,
// NextAfter carries the cursor for the next one: repeat the request
// with ?after=<next_after> to continue the descending-ID walk.
type SessionList struct {
	Stats     Stats            `json:"stats"`
	Sessions  []SessionSummary `json:"sessions"`
	NextAfter uint64           `json:"next_after,omitempty"`
}

// DefaultPageLimit bounds one introspection listing page when the
// request names no ?limit= — the dump used to be O(retained sessions)
// per scrape.
const DefaultPageLimit = 256

// PageParams decodes the shared ?limit=/?after= pagination query
// parameters (also used by the journal's list endpoint). limit <= 0
// means unbounded; after > 0 restricts the listing to IDs strictly
// below it (listings are newest-first).
func PageParams(req *http.Request) (limit int, after uint64, err error) {
	limit = DefaultPageLimit
	if s := req.URL.Query().Get("limit"); s != "" {
		limit, err = strconv.Atoi(s)
		if err != nil {
			return 0, 0, err
		}
	}
	if s := req.URL.Query().Get("after"); s != "" {
		after, err = strconv.ParseUint(s, 10, 64)
		if err != nil {
			return 0, 0, err
		}
	}
	return limit, after, nil
}

// ServeSessions handles /sessions (listing, paginated by
// ?limit=/?after=) and /sessions/{id} (full trace). Mount it for both
// the exact path and the subtree.
func (r *Recorder) ServeSessions(w http.ResponseWriter, req *http.Request) {
	if r == nil {
		http.Error(w, `{"error":"flight recorder disabled"}`, http.StatusNotFound)
		return
	}
	rest := strings.Trim(strings.TrimPrefix(req.URL.Path, "/sessions"), "/")
	if rest == "" {
		limit, after, err := PageParams(req)
		if err != nil {
			http.Error(w, `{"error":"bad limit or after parameter"}`, http.StatusBadRequest)
			return
		}
		traces := r.Sessions()
		list := SessionList{Stats: r.Stats(), Sessions: make([]SessionSummary, 0, len(traces))}
		for _, st := range traces {
			if after > 0 && st.ID() >= after {
				continue
			}
			if limit > 0 && len(list.Sessions) == limit {
				list.NextAfter = list.Sessions[len(list.Sessions)-1].ID
				break
			}
			list.Sessions = append(list.Sessions, st.Summary())
		}
		telemetry.WriteJSON(w, list)
		return
	}
	id, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		http.Error(w, `{"error":"bad session id"}`, http.StatusBadRequest)
		return
	}
	st := r.Lookup(id)
	if st == nil {
		http.Error(w, `{"error":"session not found or no longer retained"}`, http.StatusNotFound)
		return
	}
	telemetry.WriteJSON(w, st.View())
}

// ServeDrift handles /drift: the per-feature divergence report.
func (d *DriftMonitor) ServeDrift(w http.ResponseWriter, req *http.Request) {
	if d == nil {
		http.Error(w, `{"error":"drift telemetry disabled"}`, http.StatusNotFound)
		return
	}
	telemetry.WriteJSON(w, d.Report())
}
