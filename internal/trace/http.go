package trace

import (
	"net/http"
	"strconv"
	"strings"

	"inaudible/internal/telemetry"
)

// SessionList is the /sessions response body.
type SessionList struct {
	Stats    Stats            `json:"stats"`
	Sessions []SessionSummary `json:"sessions"`
}

// ServeSessions handles /sessions (listing) and /sessions/{id} (full
// trace). Mount it for both the exact path and the subtree.
func (r *Recorder) ServeSessions(w http.ResponseWriter, req *http.Request) {
	if r == nil {
		http.Error(w, `{"error":"flight recorder disabled"}`, http.StatusNotFound)
		return
	}
	rest := strings.Trim(strings.TrimPrefix(req.URL.Path, "/sessions"), "/")
	if rest == "" {
		traces := r.Sessions()
		list := SessionList{Stats: r.Stats(), Sessions: make([]SessionSummary, 0, len(traces))}
		for _, st := range traces {
			list.Sessions = append(list.Sessions, st.Summary())
		}
		telemetry.WriteJSON(w, list)
		return
	}
	id, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		http.Error(w, `{"error":"bad session id"}`, http.StatusBadRequest)
		return
	}
	st := r.Lookup(id)
	if st == nil {
		http.Error(w, `{"error":"session not found or no longer retained"}`, http.StatusNotFound)
		return
	}
	telemetry.WriteJSON(w, st.View())
}

// ServeDrift handles /drift: the per-feature divergence report.
func (d *DriftMonitor) ServeDrift(w http.ResponseWriter, req *http.Request) {
	if d == nil {
		http.Error(w, `{"error":"drift telemetry disabled"}`, http.StatusNotFound)
		return
	}
	telemetry.WriteJSON(w, d.Report())
}
