package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"inaudible/internal/telemetry"
)

// Config sizes the flight recorder. Zero values take the defaults.
type Config struct {
	// Events is the per-session event ring size (default 128). Older
	// events are overwritten; the total count is still reported.
	Events int
	// Exemplars is how many completed sessions to retain regardless of
	// outcome (default 32).
	Exemplars int
	// Notable is how many notable sessions (rejected, degraded,
	// escalated, SLO-violating, attack-verdict, aborted) to retain in a
	// separate ring so bursts of ordinary traffic cannot evict them
	// (default 64).
	Notable int
	// SLO is the close-to-final-verdict latency above which a session
	// is marked notable (0 disables the predicate).
	SLO time.Duration
	// SlowAdvance is the batched-analysis step duration at or above
	// which a KindAdvance event is recorded (default 1ms; every Advance
	// would flood the bounded ring at frame rate).
	SlowAdvance time.Duration
	// Node is the recording process's cluster identity, echoed in Stats
	// so flight-recorder snapshots from several nodes are
	// distinguishable side by side. Empty for standalone processes.
	Node string
	// FeatureFrames bounds how many detector-input vectors a session may
	// retain for the durable journal (default 32, mirroring the
	// analyzer's bounded-budget discipline). Negative disables capture —
	// the journal's privacy knob.
	FeatureFrames int
	// Evicted counts exemplars lost to retention pressure, split by the
	// "ring" label (recent|notable). Pass a registry-owned CounterVec to
	// export it as fleet_trace_evicted_total; nil gets a private,
	// unexported family so call sites stay unconditional.
	Evicted *telemetry.CounterVec
}

func (c Config) withDefaults() Config {
	if c.Events <= 0 {
		c.Events = 128
	}
	if c.Exemplars <= 0 {
		c.Exemplars = 32
	}
	if c.Notable <= 0 {
		c.Notable = 64
	}
	if c.SlowAdvance <= 0 {
		c.SlowAdvance = time.Millisecond
	}
	if c.FeatureFrames == 0 {
		c.FeatureFrames = 32
	}
	if c.Evicted == nil {
		c.Evicted = telemetry.NewCounterVec("ring", "recent", "notable")
	}
	return c
}

// Recorder owns the fleet's session traces: the live set plus two
// bounded retention rings (recent completions and notable sessions).
// Start/End/Rejected run on session open/close — cold paths — so a
// plain mutex is fine; per-event recording never touches the Recorder.
type Recorder struct {
	cfg    Config
	serial atomic.Uint64

	mu       sync.Mutex
	live     map[uint64]*SessionTrace
	done     []*SessionTrace // recent-completions ring
	doneNext int
	notable  []*SessionTrace // notable ring
	noteNext int

	completed atomic.Uint64
	aborted   atomic.Uint64
	rejected  atomic.Uint64

	evictedRecent  *telemetry.Counter
	evictedNotable *telemetry.Counter
}

// NewRecorder builds a flight recorder with the given retention config.
func NewRecorder(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	return &Recorder{
		cfg:            cfg,
		live:           make(map[uint64]*SessionTrace),
		done:           make([]*SessionTrace, 0, cfg.Exemplars),
		notable:        make([]*SessionTrace, 0, cfg.Notable),
		evictedRecent:  cfg.Evicted.With("recent"),
		evictedNotable: cfg.Evicted.With("notable"),
	}
}

// Start opens a trace for an admitted session and records its admission
// event. occ, if non-nil, probes the live session's frame-ring
// occupancy for introspection snapshots; it is dropped when the trace
// ends. Nil-safe: a nil Recorder returns a nil trace, and a nil trace
// records nothing.
func (r *Recorder) Start(key uint64, rate float64, shard int, degraded bool, occ func() int) *SessionTrace {
	if r == nil {
		return nil
	}
	st := &SessionTrace{
		id:       r.serial.Add(1),
		key:      key,
		rate:     rate,
		shard:    shard,
		degraded: degraded,
		start:    time.Now(),
		cells:    make([]cell, r.cfg.Events),
		sloNS:    int64(r.cfg.SLO),
		slowNS:   int64(r.cfg.SlowAdvance),
		featCap:  r.cfg.FeatureFrames,
	}
	if occ != nil {
		st.occ.Store(&occ)
	}
	adm := 0.0
	if degraded {
		adm = 1
		st.MarkNotable(NotableDegraded)
	}
	st.Record(KindAdmitted, adm, float64(shard))
	r.mu.Lock()
	r.live[st.id] = st
	r.mu.Unlock()
	return st
}

// Rejected retains a synthetic single-event trace for a session the
// fleet turned away; rejected sessions never reach a shard, so this is
// their only record. reason is 0 for overload, 1 for fleet shutdown,
// 2 for a draining node refusing new sessions. The sealed trace is
// returned so the durable journal can record the rejection too.
func (r *Recorder) Rejected(key uint64, rate float64, reason float64) *SessionTrace {
	if r == nil {
		return nil
	}
	st := &SessionTrace{
		id:    r.serial.Add(1),
		key:   key,
		rate:  rate,
		shard: -1,
		start: time.Now(),
		cells: make([]cell, 1),
	}
	st.Record(KindRejected, reason, 0)
	st.MarkNotable(NotableRejected)
	st.end(stateRejected)
	r.rejected.Add(1)
	r.mu.Lock()
	r.retainLocked(st)
	r.mu.Unlock()
	return st
}

// End seals a live trace and moves it into the retention rings.
// aborted reports whether the session died without a final verdict.
func (r *Recorder) End(st *SessionTrace, aborted bool) {
	if r == nil || st == nil {
		return
	}
	state := uint32(stateDone)
	if aborted {
		state = stateAborted
		st.Record(KindAborted, 0, 0)
		st.MarkNotable(NotableAborted)
		r.aborted.Add(1)
	} else {
		r.completed.Add(1)
	}
	st.end(state)
	r.mu.Lock()
	delete(r.live, st.id)
	r.retainLocked(st)
	r.mu.Unlock()
}

// retainLocked places a finished trace in the recent ring and, when
// notable, also in the notable ring, counting whatever each overwrite
// evicts — silent exemplar loss under churn is exactly what the
// fleet_trace_evicted_total counters exist to surface. Caller holds
// r.mu.
func (r *Recorder) retainLocked(st *SessionTrace) {
	if len(r.done) < r.cfg.Exemplars {
		r.done = append(r.done, st)
	} else {
		r.evictedRecent.Inc()
		r.done[r.doneNext] = st
		r.doneNext = (r.doneNext + 1) % r.cfg.Exemplars
	}
	if st.NotableReasons() == 0 {
		return
	}
	if len(r.notable) < r.cfg.Notable {
		r.notable = append(r.notable, st)
	} else {
		r.evictedNotable.Inc()
		r.notable[r.noteNext] = st
		r.noteNext = (r.noteNext + 1) % r.cfg.Notable
	}
}

// Lookup finds a trace by session ID across the live set and both
// retention rings.
func (r *Recorder) Lookup(id uint64) *SessionTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.live[id]; ok {
		return st
	}
	for _, st := range r.done {
		if st.id == id {
			return st
		}
	}
	for _, st := range r.notable {
		if st.id == id {
			return st
		}
	}
	return nil
}

// Sessions returns every retained trace — live first, then retained
// exemplars — sorted by session ID descending (newest first), deduped
// across the rings.
func (r *Recorder) Sessions() []*SessionTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	seen := make(map[uint64]bool, len(r.live)+len(r.done)+len(r.notable))
	out := make([]*SessionTrace, 0, len(r.live)+len(r.done)+len(r.notable))
	for _, st := range r.live {
		seen[st.id] = true
		out = append(out, st)
	}
	for _, ring := range [][]*SessionTrace{r.done, r.notable} {
		for _, st := range ring {
			if !seen[st.id] {
				seen[st.id] = true
				out = append(out, st)
			}
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id > out[j].id })
	return out
}

// Stats summarizes recorder-side counts for the fleet status endpoint.
type Stats struct {
	Node           string `json:"node,omitempty"`
	Live           int    `json:"live"`
	Retained       int    `json:"retained"`
	Notable        int    `json:"notable"`
	Completed      uint64 `json:"completed_total"`
	Aborted        uint64 `json:"aborted_total"`
	Rejected       uint64 `json:"rejected_total"`
	EvictedRecent  uint64 `json:"evicted_recent_total"`
	EvictedNotable uint64 `json:"evicted_notable_total"`
}

// Stats returns the recorder's retention counters.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	r.mu.Lock()
	s := Stats{Node: r.cfg.Node, Live: len(r.live), Retained: len(r.done), Notable: len(r.notable)}
	r.mu.Unlock()
	s.Completed = r.completed.Load()
	s.Aborted = r.aborted.Load()
	s.Rejected = r.rejected.Load()
	s.EvictedRecent = r.evictedRecent.Value()
	s.EvictedNotable = r.evictedNotable.Value()
	return s
}
