package trace

import "time"

// EventView is the wire form of one event: the kind name, a
// milliseconds-since-start timestamp, and kind-specific named fields.
// Field decoding happens here, at snapshot time, so the recording path
// stays a pair of raw floats.
type EventView struct {
	Event  string             `json:"event"`
	AtMS   float64            `json:"at_ms"`
	Fields map[string]float64 `json:"fields,omitempty"`
}

// SessionView is the wire form of a session trace for the /sessions
// endpoints.
type SessionView struct {
	ID          uint64      `json:"id"`
	Key         uint64      `json:"key"`
	RateHz      float64     `json:"rate_hz"`
	Shard       int         `json:"shard"`
	Degraded    bool        `json:"degraded"`
	State       string      `json:"state"`
	StartUnixMS int64       `json:"start_unix_ms"`
	DurationMS  float64     `json:"duration_ms"`
	Notable     []string    `json:"notable,omitempty"`
	RingFrames  int         `json:"ring_occupancy,omitempty"` // live sessions only
	EventsTotal uint64      `json:"events_total"`
	Events      []EventView `json:"events,omitempty"`
}

// SessionSummary is SessionView without the event bodies, for listings.
type SessionSummary struct {
	ID          uint64   `json:"id"`
	Key         uint64   `json:"key"`
	Shard       int      `json:"shard"`
	Degraded    bool     `json:"degraded"`
	State       string   `json:"state"`
	DurationMS  float64  `json:"duration_ms"`
	Notable     []string `json:"notable,omitempty"`
	EventsTotal uint64   `json:"events_total"`
}

func stateName(s uint32) string {
	switch s {
	case stateLive:
		return "live"
	case stateDone:
		return "done"
	case stateAborted:
		return "aborted"
	case stateRejected:
		return "rejected"
	default:
		return "unknown"
	}
}

// FieldMap decodes the A/B payload into named JSON fields per kind
// (shared by the live introspection views and the journal's entry
// views, so one event renders identically on both planes).
func (e Event) FieldMap() map[string]float64 {
	switch e.Kind {
	case KindAdmitted:
		return map[string]float64{"degraded": e.A, "shard": e.B}
	case KindRejected:
		return map[string]float64{"reason": e.A}
	case KindRingHighWater:
		return map[string]float64{"occupancy_frames": e.A}
	case KindAdvance:
		return map[string]float64{"duration_us": e.A, "round_sessions": e.B}
	case KindEscalated:
		return map[string]float64{"heat": e.A, "energy_margin_db": e.B}
	case KindReleased:
		return map[string]float64{"cold_frames": e.A}
	case KindInterimVerdict, KindFinalVerdict:
		return map[string]float64{"score": e.A, "attack": e.B}
	case KindFinalized:
		return map[string]float64{"verdict_latency_us": e.A}
	default:
		return nil
	}
}

// View decodes the trace into its wire form, including events.
func (st *SessionTrace) View() SessionView {
	v := SessionView{
		ID:          st.id,
		Key:         st.key,
		RateHz:      st.rate,
		Shard:       st.shard,
		Degraded:    st.degraded,
		State:       stateName(st.state.Load()),
		StartUnixMS: st.start.UnixMilli(),
		Notable:     Notable(st.notable.Load()).Reasons(),
		EventsTotal: st.count.Load(),
	}
	if st.state.Load() == stateLive {
		v.DurationMS = float64(time.Since(st.start)) / 1e6
		if f := st.occ.Load(); f != nil {
			v.RingFrames = (*f)()
		}
	} else {
		v.DurationMS = float64(st.endNS.Load()) / 1e6
	}
	evs := st.Events()
	v.Events = make([]EventView, 0, len(evs))
	for _, e := range evs {
		v.Events = append(v.Events, EventView{
			Event:  e.Kind.String(),
			AtMS:   float64(e.At) / 1e6,
			Fields: e.FieldMap(),
		})
	}
	return v
}

// Summary decodes the trace's listing form (no event bodies).
func (st *SessionTrace) Summary() SessionSummary {
	dur := float64(st.endNS.Load()) / 1e6
	if st.state.Load() == stateLive {
		dur = float64(time.Since(st.start)) / 1e6
	}
	return SessionSummary{
		ID:          st.id,
		Key:         st.key,
		Shard:       st.shard,
		Degraded:    st.degraded,
		State:       stateName(st.state.Load()),
		DurationMS:  dur,
		Notable:     Notable(st.notable.Load()).Reasons(),
		EventsTotal: st.count.Load(),
	}
}
