// Package trace is the fleet's flight recorder and introspection plane:
// a bounded, allocation-free per-session event log plus the drift
// telemetry that compares the live feature distribution against the
// training distribution.
//
// Every admitted session gets a SessionTrace — a fixed ring of
// structured events (admission, ring high-water, batched-advance
// timing, cascade escalations, verdicts) written by whichever single
// goroutine owns the session at that moment (the opening goroutine
// before handoff, the shard worker after). Recording an event is a
// handful of atomic stores into a preallocated cell: no locks, no
// allocation, so it can sit on the serving path without disturbing the
// fleet's 0 allocs/frame contract. Introspection readers (the /sessions
// HTTP endpoints) snapshot rings concurrently with per-cell sequence
// validation — a torn cell is skipped, never misreported.
//
// The Recorder retains completed sessions as exemplars: the last N
// finished sessions plus any session that tripped a notable predicate
// (rejected, degraded, escalated, SLO-violating, attack verdict,
// aborted), so "show me the session that fired" still works after the
// session is gone. Retention is bounded on both rings.
package trace

import (
	"math"
	"sync/atomic"
	"time"
)

// Kind identifies an event type. The zero Kind marks an empty cell.
type Kind uint32

const (
	// KindAdmitted opens every trace: A = 1 for degraded admission,
	// B = shard index.
	KindAdmitted Kind = iota + 1
	// KindRejected is the only event of a rejected session's synthetic
	// trace: A = reason code (0 overloaded, 1 closed).
	KindRejected
	// KindRingHighWater marks a new session ring-occupancy maximum
	// observed by the shard worker: A = occupancy in frames.
	KindRingHighWater
	// KindAdvance records a slow batched-analysis step (the session's
	// share of a shard batch round beyond the recorder's threshold):
	// A = attributed duration µs (round duration / participants),
	// B = sessions advanced in the round.
	KindAdvance
	// KindEscalated marks a cascade tier-0→tier-1 transition:
	// A = heat at engagement, B = last frame-energy margin in dB.
	KindEscalated
	// KindReleased marks the cascade release after cold hysteresis:
	// A = consecutive cold frames.
	KindReleased
	// KindInterimVerdict is an interim detector emission: A = score,
	// B = 1 for an attack verdict.
	KindInterimVerdict
	// KindFinalVerdict is the end-of-session detector emission:
	// A = score, B = 1 for an attack verdict.
	KindFinalVerdict
	// KindFinalized is the fleet-side close: A = close-to-final-verdict
	// latency in µs.
	KindFinalized
	// KindAborted ends a trace whose session was cut without a final
	// verdict (producer abort or forced shutdown).
	KindAborted
)

// String returns the event name used on the wire.
func (k Kind) String() string {
	switch k {
	case KindAdmitted:
		return "admitted"
	case KindRejected:
		return "rejected"
	case KindRingHighWater:
		return "ring_high_water"
	case KindAdvance:
		return "batch_advance"
	case KindEscalated:
		return "escalated"
	case KindReleased:
		return "released"
	case KindInterimVerdict:
		return "interim_verdict"
	case KindFinalVerdict:
		return "final_verdict"
	case KindFinalized:
		return "finalized"
	case KindAborted:
		return "aborted"
	default:
		return "unknown"
	}
}

// Notable is the bitmask of exemplar-retention reasons.
type Notable uint32

const (
	NotableRejected Notable = 1 << iota
	NotableDegraded
	NotableEscalated
	NotableSLO
	NotableAttack
	NotableAborted
)

// Reasons expands the bitmask into wire names.
func (n Notable) Reasons() []string {
	if n == 0 {
		return nil
	}
	var out []string
	for _, r := range []struct {
		bit  Notable
		name string
	}{
		{NotableRejected, "rejected"},
		{NotableDegraded, "degraded"},
		{NotableEscalated, "escalated"},
		{NotableSLO, "slo_violation"},
		{NotableAttack, "attack_verdict"},
		{NotableAborted, "aborted"},
	} {
		if n&r.bit != 0 {
			out = append(out, r.name)
		}
	}
	return out
}

// cell is one ring slot. seq is 0 while empty or mid-write and the
// 1-based event serial once the cell is published; readers load seq
// before and after the field loads and discard the cell on a mismatch
// (a per-cell seqlock). All fields are atomics so concurrent snapshot
// reads are race-free without a lock on the write side.
type cell struct {
	seq  atomic.Uint64
	kind atomic.Uint32
	at   atomic.Int64  // ns since trace start
	a, b atomic.Uint64 // float64 bits
}

// Event is one decoded flight-recorder event.
type Event struct {
	Seq  uint64  // 1-based serial within the session
	Kind Kind    //
	At   int64   // ns since session start
	A, B float64 // kind-specific payload (see the Kind docs)
}

// SessionTrace is one session's flight record. Record is single-writer
// (the goroutine currently owning the session); every other method is
// safe to call concurrently.
type SessionTrace struct {
	id       uint64
	key      uint64
	rate     float64
	shard    int
	degraded bool
	start    time.Time

	cells []cell
	n     uint64        // writer-local event count
	count atomic.Uint64 // published event count

	notable atomic.Uint32
	state   atomic.Uint32 // 0 live, 1 done, 2 aborted, 3 rejected
	endNS   atomic.Int64  // ns since start at end

	// occ probes the live session's ring occupancy; cleared at end so
	// retained exemplars do not pin fleet session memory.
	occ atomic.Pointer[func() int]

	// thresholds stamped by the Recorder at Start.
	sloNS  int64
	slowNS int64

	// Bounded feature-frame capture for the durable journal: the
	// detector-input vectors behind verdict emissions, tagged with the
	// ordinal of the verdict they fed. Written only by the session's
	// single owning goroutine (like Record) and read only after the
	// trace is sealed, so no atomics are needed.
	featCap  int       // max retained frames; <= 0 disables capture
	featW    int       // vector width, frozen at first capture
	verdicts uint32    // verdict emissions so far (interim + final)
	featIdx  []uint32  // per-frame verdict ordinal (0-based)
	feat     []float64 // flat frame storage, len(featIdx)*featW
}

const (
	stateLive = iota
	stateDone
	stateAborted
	stateRejected
)

// ID returns the recorder-unique session serial.
func (st *SessionTrace) ID() uint64 { return st.id }

// Key returns the fleet affinity key.
func (st *SessionTrace) Key() uint64 { return st.key }

// RateHz returns the session's sample rate.
func (st *SessionTrace) RateHz() float64 { return st.rate }

// Shard returns the owning shard index (-1 for rejected sessions).
func (st *SessionTrace) Shard() int { return st.shard }

// Degraded reports a degraded-mode admission.
func (st *SessionTrace) Degraded() bool { return st.degraded }

// Start returns the session's admission time.
func (st *SessionTrace) Start() time.Time { return st.start }

// EndNanos returns the sealed trace's duration in ns since start
// (0 while live).
func (st *SessionTrace) EndNanos() int64 { return st.endNS.Load() }

// StateName returns the trace state as its wire name
// (live/done/aborted/rejected).
func (st *SessionTrace) StateName() string { return stateName(st.state.Load()) }

// EventsTotal returns the number of events recorded (the ring may
// retain fewer).
func (st *SessionTrace) EventsTotal() uint64 { return st.count.Load() }

// Record appends one event. Single-writer; nil-safe (a nil trace
// records nothing, so call sites need no recorder-enabled branch).
func (st *SessionTrace) Record(k Kind, a, b float64) {
	if st == nil {
		return
	}
	n := st.n
	c := &st.cells[n%uint64(len(st.cells))]
	c.seq.Store(0) // invalidate while the fields change
	c.kind.Store(uint32(k))
	c.at.Store(int64(time.Since(st.start)))
	c.a.Store(math.Float64bits(a))
	c.b.Store(math.Float64bits(b))
	c.seq.Store(n + 1) // publish
	st.n = n + 1
	st.count.Store(n + 1)
}

// MarkNotable tags the session for exemplar retention.
func (st *SessionTrace) MarkNotable(reason Notable) {
	if st == nil {
		return
	}
	// CAS loop instead of atomic.Uint32.Or: the module targets go 1.22.
	for {
		old := st.notable.Load()
		if old&uint32(reason) == uint32(reason) || st.notable.CompareAndSwap(old, old|uint32(reason)) {
			return
		}
	}
}

// NotableReasons returns the accumulated retention reasons.
func (st *SessionTrace) NotableReasons() Notable {
	if st == nil {
		return 0
	}
	return Notable(st.notable.Load())
}

// RecordAdvance records a batched-analysis step if it is slow enough to
// matter (at or beyond the recorder's SlowAdvance threshold). d is the
// session's attributed share of the shard batch round — round duration
// divided by participants, not the whole round — and roundSize is how
// many sessions the round advanced, so /sessions/{id} stays truthful
// about amortized cost under shard-level batching.
func (st *SessionTrace) RecordAdvance(d time.Duration, roundSize int) {
	if st == nil || int64(d) < st.slowNS {
		return
	}
	st.Record(KindAdvance, float64(d.Microseconds()), float64(roundSize))
}

// RecordFinalized records the fleet-side close with its
// close-to-final-verdict latency and applies the SLO notable predicate.
func (st *SessionTrace) RecordFinalized(verdictLatency time.Duration) {
	if st == nil {
		return
	}
	st.Record(KindFinalized, float64(verdictLatency.Microseconds()), 0)
	if st.sloNS > 0 && int64(verdictLatency) > st.sloNS {
		st.MarkNotable(NotableSLO)
	}
}

// RecordVerdict records a detector emission and applies the
// attack-verdict notable predicate.
func (st *SessionTrace) RecordVerdict(final bool, score float64, attack bool) {
	if st == nil {
		return
	}
	k := KindInterimVerdict
	if final {
		k = KindFinalVerdict
	}
	b := 0.0
	if attack {
		b = 1
		st.MarkNotable(NotableAttack)
	}
	st.Record(k, score, b)
	st.verdicts++
}

// RecordFeatures captures the detector-input vector behind the verdict
// just recorded (call immediately after RecordVerdict). Retention is
// bounded by the recorder's per-session budget; when the budget is
// full, only a final verdict's frame is still stored — it overwrites
// the last retained frame, because the final vector is the one replay
// must never lose. Single-writer, like Record; nil-safe.
func (st *SessionTrace) RecordFeatures(final bool, vec []float64) {
	if st == nil || st.featCap <= 0 || len(vec) == 0 || st.verdicts == 0 {
		return
	}
	if st.featW == 0 {
		st.featW = len(vec)
		st.featIdx = make([]uint32, 0, st.featCap)
		st.feat = make([]float64, 0, st.featCap*st.featW)
	}
	if len(vec) != st.featW {
		return // width changed mid-session: drop rather than misalign
	}
	idx := st.verdicts - 1
	if len(st.featIdx) < st.featCap {
		st.featIdx = append(st.featIdx, idx)
		st.feat = append(st.feat, vec...)
		return
	}
	if !final {
		return
	}
	last := len(st.featIdx) - 1
	st.featIdx[last] = idx
	copy(st.feat[last*st.featW:], vec)
}

// FeatureFrames returns the captured detector-input frames: the vector
// width, each frame's verdict ordinal, and the flat frame storage
// (len(idx)*width). Valid only once the trace is sealed — the journal
// reads it after End; live introspection must not.
func (st *SessionTrace) FeatureFrames() (width int, idx []uint32, flat []float64) {
	if st == nil {
		return 0, nil, nil
	}
	return st.featW, st.featIdx, st.feat
}

// VerdictCount returns how many verdict emissions the trace recorded.
func (st *SessionTrace) VerdictCount() uint32 {
	if st == nil {
		return 0
	}
	return st.verdicts
}

// end seals the trace (called by the Recorder).
func (st *SessionTrace) end(state uint32) {
	st.endNS.Store(int64(time.Since(st.start)))
	st.state.Store(state)
	st.occ.Store(nil)
}

// Events returns a consistent decode of the retained ring: the latest
// min(total, ring) events in order. Cells being overwritten mid-read
// are skipped. Safe concurrently with the writer.
func (st *SessionTrace) Events() []Event {
	total := st.count.Load()
	size := uint64(len(st.cells))
	first := uint64(0)
	if total > size {
		first = total - size
	}
	out := make([]Event, 0, total-first)
	for i := first; i < total; i++ {
		c := &st.cells[i%size]
		if c.seq.Load() != i+1 {
			continue // overwritten or mid-write
		}
		ev := Event{
			Seq:  i + 1,
			Kind: Kind(c.kind.Load()),
			At:   c.at.Load(),
			A:    math.Float64frombits(c.a.Load()),
			B:    math.Float64frombits(c.b.Load()),
		}
		if c.seq.Load() != i+1 {
			continue // torn read: the writer lapped us mid-decode
		}
		out = append(out, ev)
	}
	return out
}
