package trace

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

func TestRingWrapKeepsLatest(t *testing.T) {
	r := NewRecorder(Config{Events: 8})
	st := Start(r, t)
	for i := 0; i < 20; i++ {
		st.Record(KindInterimVerdict, float64(i), 0)
	}
	evs := st.Events()
	// 1 admitted event + 20 interims = 21 total; ring keeps the last 8.
	if st.count.Load() != 21 {
		t.Fatalf("events_total = %d, want 21", st.count.Load())
	}
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want ring size 8", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(14 + i) // 21-8+1 .. 21
		if ev.Seq != wantSeq {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, wantSeq)
		}
		if ev.Kind != KindInterimVerdict || ev.A != float64(wantSeq-2) {
			t.Fatalf("event %d decoded wrong: %+v", i, ev)
		}
	}
}

// Start opens a plain trace for tests.
func Start(r *Recorder, t *testing.T) *SessionTrace {
	t.Helper()
	st := r.Start(7, 16000, 0, false, nil)
	if st == nil {
		t.Fatal("Start returned nil trace")
	}
	return st
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	st := r.Start(1, 16000, 0, false, nil)
	if st != nil {
		t.Fatal("nil recorder produced a trace")
	}
	// All of these must be no-ops, not panics.
	st.Record(KindAdmitted, 0, 0)
	st.MarkNotable(NotableAttack)
	st.RecordAdvance(time.Second, 1)
	st.RecordFinalized(time.Second)
	st.RecordVerdict(true, 1, true)
	r.End(st, false)
	r.Rejected(1, 16000, 0)
	if got := r.Sessions(); got != nil {
		t.Fatalf("nil recorder sessions: %v", got)
	}
}

func TestConcurrentSnapshotUnderWrites(t *testing.T) {
	r := NewRecorder(Config{Events: 16})
	st := Start(r, t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			st.Record(KindInterimVerdict, float64(i), 1)
		}
	}()
	// Readers must only ever see fully-published cells: seq, kind and
	// payload consistent with each other.
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, ev := range st.Events() {
			if ev.Seq == 0 {
				t.Fatal("snapshot returned an unpublished cell")
			}
			if ev.Kind == KindInterimVerdict && ev.B != 1 {
				t.Fatalf("torn event decode: %+v", ev)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestRecorderRetention(t *testing.T) {
	r := NewRecorder(Config{Exemplars: 4, Notable: 2})
	// 6 ordinary completions: only the last 4 stay.
	var ids []uint64
	for i := 0; i < 6; i++ {
		st := r.Start(uint64(i), 16000, 0, false, nil)
		ids = append(ids, st.ID())
		r.End(st, false)
	}
	if got := r.Stats(); got.Retained != 4 || got.Completed != 6 || got.Live != 0 {
		t.Fatalf("stats after completions: %+v", got)
	}
	if r.Lookup(ids[0]) != nil || r.Lookup(ids[1]) != nil {
		t.Fatal("evicted sessions still resolvable")
	}
	if r.Lookup(ids[5]) == nil {
		t.Fatal("latest session not retained")
	}

	// Notable sessions survive in their own ring even when ordinary
	// traffic churns the exemplar ring.
	att := r.Start(100, 16000, 0, false, nil)
	att.RecordVerdict(true, 2.5, true) // attack verdict => notable
	r.End(att, false)
	for i := 0; i < 8; i++ {
		st := r.Start(uint64(200+i), 16000, 0, false, nil)
		r.End(st, false)
	}
	got := r.Lookup(att.ID())
	if got == nil {
		t.Fatal("attack-verdict session evicted by ordinary churn")
	}
	if n := got.NotableReasons(); n&NotableAttack == 0 {
		t.Fatalf("notable reasons = %v", n.Reasons())
	}

	// The notable ring itself is bounded.
	for i := 0; i < 5; i++ {
		st := r.Start(uint64(300+i), 16000, 0, true, nil) // degraded => notable
		r.End(st, false)
	}
	if got := r.Stats(); got.Notable != 2 {
		t.Fatalf("notable ring grew past its bound: %+v", got)
	}
}

func TestRejectedAndAbortedTraces(t *testing.T) {
	r := NewRecorder(Config{})
	r.Rejected(42, 16000, 0)
	sts := r.Sessions()
	if len(sts) != 1 {
		t.Fatalf("sessions after reject: %d", len(sts))
	}
	v := sts[0].View()
	if v.State != "rejected" || len(v.Events) != 1 || v.Events[0].Event != "rejected" {
		t.Fatalf("rejected view: %+v", v)
	}

	st := r.Start(43, 16000, 1, false, nil)
	r.End(st, true)
	v = st.View()
	if v.State != "aborted" || v.Events[len(v.Events)-1].Event != "aborted" {
		t.Fatalf("aborted view: %+v", v)
	}
	if got := r.Stats(); got.Aborted != 1 || got.Rejected != 1 {
		t.Fatalf("stats: %+v", got)
	}
}

func TestThresholdPredicates(t *testing.T) {
	r := NewRecorder(Config{SLO: 10 * time.Millisecond, SlowAdvance: time.Millisecond})
	st := Start(r, t)
	st.RecordAdvance(500*time.Microsecond, 3) // below threshold: no event
	st.RecordAdvance(2*time.Millisecond, 3)   // recorded
	st.RecordFinalized(5 * time.Millisecond)  // within SLO
	if st.NotableReasons()&NotableSLO != 0 {
		t.Fatal("SLO marked on a within-SLO session")
	}
	st.RecordFinalized(20 * time.Millisecond) // violates SLO
	if st.NotableReasons()&NotableSLO == 0 {
		t.Fatal("SLO violation not marked")
	}
	var advances int
	for _, ev := range st.Events() {
		if ev.Kind == KindAdvance {
			advances++
		}
	}
	if advances != 1 {
		t.Fatalf("advance events = %d, want 1 (threshold filter)", advances)
	}
}

func TestSessionsHandler(t *testing.T) {
	r := NewRecorder(Config{})
	st := r.Start(7, 16000, 2, false, func() int { return 5 })
	st.RecordVerdict(false, -0.5, false)

	get := func(path string) (*http.Response, []byte) {
		req := httptest.NewRequest("GET", path, nil)
		w := httptest.NewRecorder()
		r.ServeSessions(w, req)
		resp := w.Result()
		return resp, w.Body.Bytes()
	}
	resp, body := get("/sessions")
	if resp.StatusCode != 200 {
		t.Fatalf("/sessions status %d", resp.StatusCode)
	}
	var list SessionList
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("/sessions not JSON: %v", err)
	}
	if len(list.Sessions) != 1 || list.Sessions[0].State != "live" {
		t.Fatalf("/sessions = %+v", list)
	}

	resp, body = get("/sessions/1")
	var view SessionView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatalf("/sessions/1 not JSON: %v", err)
	}
	if view.RingFrames != 5 {
		t.Fatalf("live occupancy probe not used: %+v", view)
	}
	if len(view.Events) != 2 || view.Events[0].Event != "admitted" || view.Events[1].Event != "interim_verdict" {
		t.Fatalf("/sessions/1 events: %+v", view.Events)
	}

	if resp, _ = get("/sessions/999"); resp.StatusCode != 404 {
		t.Fatalf("missing session status %d, want 404", resp.StatusCode)
	}
	if resp, _ = get("/sessions/xyz"); resp.StatusCode != 400 {
		t.Fatalf("bad id status %d, want 400", resp.StatusCode)
	}

	var nilRec *Recorder
	w := httptest.NewRecorder()
	nilRec.ServeSessions(w, httptest.NewRequest("GET", "/sessions", nil))
	if w.Result().StatusCode != 404 {
		t.Fatalf("nil recorder status %d, want 404", w.Result().StatusCode)
	}
}

func TestDriftPSI(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := func() float64 { return -3 + rng.NormFloat64()*0.5 }
	var train [][]float64
	for i := 0; i < 500; i++ {
		v := make([]float64, 5)
		for j := range v {
			v[j] = base()
		}
		train = append(train, v)
	}
	refs := ReferenceFromVectors(train)
	if len(refs) != 5 || refs[0].Count != 500 {
		t.Fatalf("references: %d features, count %d", len(refs), refs[0].Count)
	}

	// Same-distribution live traffic: everything reads ok.
	d := NewDriftMonitor(nil)
	d.SetReference(refs)
	for i := 0; i < 500; i++ {
		v := make([]float64, 5)
		for j := range v {
			v[j] = base()
		}
		d.Observe(v)
	}
	rep := d.Report()
	if rep.Status != "ok" || rep.MaxPSI >= psiWarn {
		t.Fatalf("matched distribution reported drift: %+v", rep)
	}

	// Shift one feature hard: that feature (and the fleet status) must
	// trip the alert threshold; untouched features stay ok.
	d2 := NewDriftMonitor(nil)
	d2.SetReference(refs)
	for i := 0; i < 500; i++ {
		v := make([]float64, 5)
		for j := range v {
			v[j] = base()
		}
		v[1] += 2.5 // high-snr walked up by 2.5 decades
		d2.Observe(v)
	}
	rep = d2.Report()
	if rep.Features[1].Status != "alert" {
		t.Fatalf("shifted feature not alerted: %+v", rep.Features[1])
	}
	if rep.Features[0].Status != "ok" {
		t.Fatalf("unshifted feature misreported: %+v", rep.Features[0])
	}
	if rep.Status != "alert" || rep.MaxPSI < psiAlert {
		t.Fatalf("fleet drift status: %+v", rep)
	}
}

func TestDriftNoReference(t *testing.T) {
	d := NewDriftMonitor(nil)
	d.Observe([]float64{-1, -2, 0.5, -3, -4})
	rep := d.Report()
	if rep.Status != "no_reference" || rep.HasRef {
		t.Fatalf("report without reference: %+v", rep)
	}
	if rep.Features[0].Count != 1 {
		t.Fatalf("observation not counted: %+v", rep.Features[0])
	}
	w := httptest.NewRecorder()
	d.ServeDrift(w, httptest.NewRequest("GET", "/drift", nil))
	var out DriftReport
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("/drift not JSON: %v", err)
	}
	var nilD *DriftMonitor
	w = httptest.NewRecorder()
	nilD.ServeDrift(w, httptest.NewRequest("GET", "/drift", nil))
	if w.Result().StatusCode != 404 {
		t.Fatalf("nil drift monitor status %d, want 404", w.Result().StatusCode)
	}
}

func TestRecordNoAlloc(t *testing.T) {
	r := NewRecorder(Config{Events: 32})
	st := r.Start(1, 16000, 0, false, nil)
	allocs := testing.AllocsPerRun(1000, func() {
		st.Record(KindInterimVerdict, 1.5, 0)
		st.MarkNotable(NotableEscalated)
	})
	if allocs != 0 {
		t.Fatalf("Record allocated %v times per run, want 0", allocs)
	}
}

// TestEvictionCounters pins the fleet_trace_evicted_total semantics:
// every ring overwrite counts toward the matching ring label, and
// filling below capacity counts nothing.
func TestEvictionCounters(t *testing.T) {
	r := NewRecorder(Config{Exemplars: 3, Notable: 2})
	for i := 0; i < 3; i++ {
		r.End(r.Start(uint64(i), 16000, 0, false, nil), false)
	}
	if s := r.Stats(); s.EvictedRecent != 0 || s.EvictedNotable != 0 {
		t.Fatalf("evictions counted before any overwrite: %+v", s)
	}
	for i := 0; i < 5; i++ {
		r.End(r.Start(uint64(10+i), 16000, 0, false, nil), false)
	}
	if s := r.Stats(); s.EvictedRecent != 5 || s.EvictedNotable != 0 {
		t.Fatalf("recent evictions: %+v", s)
	}
	// Degraded admissions are notable; 5 into a 2-deep ring leaves 3
	// notable evictions (plus more recent-ring churn).
	for i := 0; i < 5; i++ {
		r.End(r.Start(uint64(20+i), 16000, 0, true, nil), false)
	}
	if s := r.Stats(); s.EvictedNotable != 3 {
		t.Fatalf("notable evictions: %+v", s)
	}
}

// TestFeatureFrameCapture pins the journal's bounded feature capture:
// frames tag the verdict ordinal they fed, the budget caps interim
// frames, and a final verdict's frame always survives by overwriting
// the last retained slot.
func TestFeatureFrameCapture(t *testing.T) {
	r := NewRecorder(Config{FeatureFrames: 3})
	st := r.Start(1, 16000, 0, false, nil)
	for i := 0; i < 5; i++ {
		st.RecordVerdict(false, float64(i), false)
		st.RecordFeatures(false, []float64{float64(i), 10 + float64(i)})
	}
	st.RecordVerdict(true, 99, true)
	st.RecordFeatures(true, []float64{99, 100})
	r.End(st, false)

	w, idx, flat := st.FeatureFrames()
	if w != 2 || len(idx) != 3 || len(flat) != 6 {
		t.Fatalf("capture shape: w=%d idx=%v flat=%v", w, idx, flat)
	}
	if idx[0] != 0 || idx[1] != 1 {
		t.Fatalf("interim ordinals: %v", idx)
	}
	// The final frame (ordinal 5) displaced the last interim one.
	if idx[2] != 5 || flat[4] != 99 || flat[5] != 100 {
		t.Fatalf("final frame not preserved: idx=%v flat=%v", idx, flat)
	}
	if st.VerdictCount() != 6 {
		t.Fatalf("verdict count = %d", st.VerdictCount())
	}

	// Capture disabled: no frames, no allocation of the buffers.
	r2 := NewRecorder(Config{FeatureFrames: -1})
	st2 := r2.Start(2, 16000, 0, false, nil)
	st2.RecordVerdict(true, 1, false)
	st2.RecordFeatures(true, []float64{1, 2})
	if w, idx, _ := st2.FeatureFrames(); w != 0 || len(idx) != 0 {
		t.Fatalf("disabled capture stored frames: w=%d idx=%v", w, idx)
	}
}

// TestSessionsPagination drives ?limit=/?after= over a populated
// recorder: pages are newest-first, disjoint, and chained by
// next_after until exhausted.
func TestSessionsPagination(t *testing.T) {
	r := NewRecorder(Config{Exemplars: 32})
	for i := 0; i < 10; i++ {
		r.End(r.Start(uint64(i), 16000, 0, false, nil), false)
	}
	page := func(q string) SessionList {
		w := httptest.NewRecorder()
		r.ServeSessions(w, httptest.NewRequest("GET", "/sessions"+q, nil))
		if w.Result().StatusCode != 200 {
			t.Fatalf("%s status %d", q, w.Result().StatusCode)
		}
		var list SessionList
		if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
			t.Fatalf("%s not JSON: %v", q, err)
		}
		return list
	}
	var got []uint64
	q := "?limit=4"
	for pages := 0; ; pages++ {
		if pages > 5 {
			t.Fatal("pagination did not terminate")
		}
		list := page(q)
		for _, s := range list.Sessions {
			got = append(got, s.ID)
		}
		if list.NextAfter == 0 {
			break
		}
		q = "?limit=4&after=" + strconv.FormatUint(list.NextAfter, 10)
	}
	if len(got) != 10 {
		t.Fatalf("paged walk returned %d sessions: %v", len(got), got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] >= got[i-1] {
			t.Fatalf("pages not strictly descending: %v", got)
		}
	}
	if full := page(""); len(full.Sessions) != 10 || full.NextAfter != 0 {
		t.Fatalf("default page truncated a small listing: %d sessions", len(full.Sessions))
	}
	w := httptest.NewRecorder()
	r.ServeSessions(w, httptest.NewRequest("GET", "/sessions?limit=x", nil))
	if w.Result().StatusCode != 400 {
		t.Fatalf("bad limit status %d, want 400", w.Result().StatusCode)
	}
}
