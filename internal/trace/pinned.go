package trace

// DemoReference returns the pinned training-distribution reference used
// when a daemon starts without training (guardd -detector demo): the
// per-feature summaries of the Quick-suite corpus at seed 1 with 10
// trials per grid point (60 samples, legit and attack pooled — the same
// pooling TrainDetectorWithSamples hands a real training run). Feature
// order matches defense.FeatureNames / Features.Vector.
//
// Regenerate by building the quick corpus and printing
// ReferenceFromVectors over the sample vectors:
//
//	sc := core.DefaultScenario(); sc.Seed = 1
//	cfg := experiment.QuickCorpusConfig(experiment.DefaultCorpusConfig(sc))
//	cfg.Trials = 10
//	cfg.Runner = experiment.NewRunner(0)
//	_, samples, _ := experiment.TrainDetectorWithSamples("threshold", cfg, 1)
func DemoReference() []Reference {
	return []Reference{
		{Count: 60, Mean: -4.29123, Std: 1.17465, Probs: []float64{0.233333, 0, 0.0333333, 0.05, 0.0833333, 0.116667, 0.0833333, 0.0666667, 0.2, 0.133333, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}},
		{Count: 60, Mean: -3.9346, Std: 0.969272, Probs: []float64{0.0666667, 0, 0.0333333, 0.0333333, 0.116667, 0.0833333, 0.333333, 0, 0, 0.333333, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}},
		{Count: 60, Mean: 0.1843, Std: 0.056752, Probs: []float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0}},
		{Count: 60, Mean: -2.97272, Std: 0.401639, Probs: []float64{0, 0, 0, 0, 0, 0, 0, 0.333333, 0, 0.5, 0.166667, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}},
		{Count: 60, Mean: -2.89196, Std: 0.362269, Probs: []float64{0, 0, 0, 0, 0, 0, 0, 0.333333, 0, 0.5, 0.166667, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}},
	}
}
