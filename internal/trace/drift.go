package trace

import (
	"math"
	"strings"

	"inaudible/internal/defense"
	"inaudible/internal/telemetry"
)

// Drift telemetry: the live distribution of each defense feature,
// compared against the training distribution the detector was fitted
// on. The serving path observes the final feature vector of every
// fully-analyzed session into per-feature histograms (exported via
// internal/telemetry); the /drift endpoint folds those against pinned
// reference summaries into a population-stability-index (PSI) report
// per feature. A detector whose input distribution has walked away from
// its training distribution is silently miscalibrated — this makes
// that visible before the verdicts go wrong.

// DriftBounds returns the shared histogram bucket bounds used for all
// five defense features. Log-ratio features are floored at -6
// (defense.FloorLog) and rarely exceed 1; the envelope correlation
// lives in [0, 1]. 24 buckets at 0.375 width cover -6..3 with enough
// resolution for a meaningful PSI.
func DriftBounds() []float64 {
	bounds := make([]float64, 0, 24)
	for b := -6.0; b <= 3.0; b += 0.375 {
		bounds = append(bounds, b)
	}
	return bounds
}

// Reference is a pinned summary of one feature's training distribution:
// sample moments plus bucket probabilities over DriftBounds() (one more
// entry than bounds — the overflow bucket).
type Reference struct {
	Count int       `json:"count"`
	Mean  float64   `json:"mean"`
	Std   float64   `json:"std"`
	Probs []float64 `json:"probs"`
}

// ReferenceFromVectors summarizes a training corpus (one feature vector
// per recording, defense.Features order) into per-feature references.
func ReferenceFromVectors(vectors [][]float64) []Reference {
	n := len(defense.FeatureNames())
	refs := make([]Reference, n)
	bounds := DriftBounds()
	for f := 0; f < n; f++ {
		counts := make([]float64, len(bounds)+1)
		var sum, sumsq float64
		total := 0
		for _, vec := range vectors {
			if f >= len(vec) {
				continue
			}
			v := vec[f]
			counts[bucketOf(bounds, v)]++
			sum += v
			sumsq += v * v
			total++
		}
		r := Reference{Count: total, Probs: make([]float64, len(counts))}
		if total > 0 {
			r.Mean = sum / float64(total)
			variance := sumsq/float64(total) - r.Mean*r.Mean
			if variance > 0 {
				r.Std = math.Sqrt(variance)
			}
			for i, c := range counts {
				r.Probs[i] = c / float64(total)
			}
		}
		refs[f] = r
	}
	return refs
}

func bucketOf(bounds []float64, v float64) int {
	for i, b := range bounds {
		if v <= b {
			return i
		}
	}
	return len(bounds)
}

// PSI thresholds: the conventional 0.1 (investigate) / 0.25 (act)
// break-points.
const (
	psiWarn  = 0.1
	psiAlert = 0.25
)

// psi computes the population stability index between a live bucket
// count vector and reference probabilities, with epsilon smoothing so
// empty buckets do not blow up the logarithm.
func psi(liveCounts []uint64, refProbs []float64) float64 {
	const eps = 1e-4
	var total float64
	for _, c := range liveCounts {
		total += float64(c)
	}
	if total == 0 {
		return 0
	}
	var out float64
	for i := range liveCounts {
		p := (float64(liveCounts[i])/total + eps) / (1 + eps*float64(len(liveCounts)))
		q := eps
		if i < len(refProbs) {
			q = (refProbs[i] + eps) / (1 + eps*float64(len(liveCounts)))
		}
		out += (p - q) * math.Log(p/q)
	}
	return out
}

func psiStatus(v float64) string {
	switch {
	case v >= psiAlert:
		return "alert"
	case v >= psiWarn:
		return "drifting"
	default:
		return "ok"
	}
}

// DriftMonitor accumulates the live distribution of the defense
// features. Observe is called once per fully-analyzed session (never
// per frame) with the final feature vector; it is concurrency-safe and
// allocation-free.
type DriftMonitor struct {
	names  []string
	hists  []*telemetry.Histogram
	psiG   []*telemetry.Gauge // milli-PSI, refreshed on Report
	refs   []Reference
	hasRef bool
}

// metricName converts a feature name ("trace-snr") into a Prometheus
// metric suffix ("trace_snr").
func metricName(feature string) string {
	return strings.ReplaceAll(feature, "-", "_")
}

// NewDriftMonitor builds the monitor and registers one
// fleet_feature_<name> histogram and one fleet_drift_psi_milli_<name>
// gauge per defense feature on reg (skipped when reg is nil).
func NewDriftMonitor(reg *telemetry.Registry) *DriftMonitor {
	names := defense.FeatureNames()
	d := &DriftMonitor{
		names: names,
		hists: make([]*telemetry.Histogram, len(names)),
		psiG:  make([]*telemetry.Gauge, len(names)),
	}
	bounds := DriftBounds()
	for i, n := range names {
		if reg != nil {
			d.hists[i] = reg.NewHistogram("fleet_feature_"+metricName(n),
				"live distribution of the "+n+" defense feature (final verdicts)", bounds)
			d.psiG[i] = reg.NewGauge("fleet_drift_psi_milli_"+metricName(n),
				"population stability index of "+n+" vs the training distribution, x1000")
		} else {
			d.hists[i] = telemetry.NewHistogram(bounds)
			d.psiG[i] = &telemetry.Gauge{}
		}
	}
	return d
}

// SetReference pins the training-distribution summaries (one per
// feature, defense.Features order). A nil or short slice disables the
// divergence computation for the missing features.
func (d *DriftMonitor) SetReference(refs []Reference) {
	if d == nil {
		return
	}
	d.refs = refs
	d.hasRef = len(refs) > 0
}

// Observe folds one final feature vector into the live distribution.
// Nil-safe and allocation-free.
func (d *DriftMonitor) Observe(vec []float64) {
	if d == nil {
		return
	}
	for i := range d.hists {
		if i < len(vec) {
			d.hists[i].Observe(vec[i])
		}
	}
}

// FeatureDrift is one feature's entry in the /drift report.
type FeatureDrift struct {
	Name   string     `json:"name"`
	Count  uint64     `json:"count"`
	Mean   float64    `json:"mean"`
	Std    float64    `json:"std"`
	PSI    float64    `json:"psi"`
	Status string     `json:"status"`
	Ref    *Reference `json:"reference,omitempty"`
}

// DriftReport is the /drift response body.
type DriftReport struct {
	Features []FeatureDrift `json:"features"`
	MaxPSI   float64        `json:"max_psi"`
	Status   string         `json:"status"`
	HasRef   bool           `json:"has_reference"`
}

// Report computes the divergence of every feature's live distribution
// from its reference and refreshes the exported PSI gauges.
func (d *DriftMonitor) Report() DriftReport {
	rep := DriftReport{Features: make([]FeatureDrift, 0, len(d.names)), HasRef: d.hasRef}
	for i, n := range d.names {
		dump := d.hists[i].Dump()
		fd := FeatureDrift{Name: n, Count: dump.Count, Status: "ok"}
		if dump.Count > 0 {
			fd.Mean = dump.Sum / float64(dump.Count)
			// Std from the bucketed distribution (midpoint approximation):
			// good enough for an operator-facing drift signal.
			fd.Std = bucketStd(dump, fd.Mean)
		}
		if d.hasRef && i < len(d.refs) {
			ref := d.refs[i]
			fd.Ref = &ref
			fd.PSI = psi(dump.Counts, ref.Probs)
			fd.Status = psiStatus(fd.PSI)
			d.psiG[i].Set(int64(fd.PSI * 1000))
			if fd.PSI > rep.MaxPSI {
				rep.MaxPSI = fd.PSI
			}
		}
		rep.Features = append(rep.Features, fd)
	}
	rep.Status = psiStatus(rep.MaxPSI)
	if !d.hasRef {
		rep.Status = "no_reference"
	}
	return rep
}

// bucketStd estimates the standard deviation from a histogram dump
// using bucket midpoints (edge buckets use the min/max observations).
func bucketStd(dump telemetry.HistogramDump, mean float64) float64 {
	if dump.Count < 2 {
		return 0
	}
	var sumsq float64
	for i, c := range dump.Counts {
		if c == 0 {
			continue
		}
		mid := bucketMid(dump, i)
		sumsq += float64(c) * (mid - mean) * (mid - mean)
	}
	return math.Sqrt(sumsq / float64(dump.Count))
}

func bucketMid(dump telemetry.HistogramDump, i int) float64 {
	bounds := dump.Bounds
	switch {
	case i == 0:
		lo := dump.Min
		if lo > bounds[0] {
			lo = bounds[0]
		}
		return (lo + bounds[0]) / 2
	case i >= len(bounds):
		hi := dump.Max
		if hi < bounds[len(bounds)-1] {
			hi = bounds[len(bounds)-1]
		}
		return (bounds[len(bounds)-1] + hi) / 2
	default:
		return (bounds[i-1] + bounds[i]) / 2
	}
}
