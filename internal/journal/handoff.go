package journal

import (
	"sync/atomic"

	"inaudible/internal/trace"
)

// ShardSink is the lock-free SPSC handoff from one shard worker to the
// journal writer. Record is the producer side and is what the fleet
// calls on session close: one atomic pointer store plus a non-blocking
// wake — no locks, no allocation, so journaling never perturbs the
// shard's 0 allocs/frame contract. pop is the consumer side, owned by
// the writer goroutine.
type ShardSink struct {
	j     *Journal
	cells []atomic.Pointer[trace.SessionTrace]
	mask  uint64
	head  atomic.Uint64 // consumer cursor
	tail  atomic.Uint64 // producer cursor
}

// ShardSink returns a fresh handoff ring for one shard worker. Called
// once per shard at fleet construction (cold path).
func (j *Journal) ShardSink(shard int) *ShardSink {
	if j == nil {
		return nil
	}
	depth := 1
	for depth < j.cfg.QueueDepth {
		depth <<= 1
	}
	s := &ShardSink{
		j:     j,
		cells: make([]atomic.Pointer[trace.SessionTrace], depth),
		mask:  uint64(depth - 1),
	}
	j.sinkMu.Lock()
	j.sinks = append(j.sinks, s)
	j.sinkMu.Unlock()
	return s
}

// Record hands a sealed trace to the journal writer. A full ring drops
// the record (counted) rather than ever blocking the shard worker.
// Single producer: the shard worker goroutine. The aborted flag is
// accepted for the fleet's SessionSink shape; the sealed trace already
// carries its state.
func (s *ShardSink) Record(st *trace.SessionTrace, aborted bool) {
	if s == nil || st == nil {
		return
	}
	t := s.tail.Load()
	if t-s.head.Load() > s.mask {
		s.j.dropped.Inc()
		return
	}
	s.cells[t&s.mask].Store(st)
	s.tail.Store(t + 1)
	s.j.nudge()
}

// pop removes the oldest queued trace, or nil. Single consumer: the
// writer goroutine.
func (s *ShardSink) pop() *trace.SessionTrace {
	h := s.head.Load()
	if h == s.tail.Load() {
		return nil
	}
	c := &s.cells[h&s.mask]
	st := c.Load()
	c.Store(nil)
	s.head.Store(h + 1)
	return st
}

// SharedSink journals traces that never reach a shard (rejected
// sessions, recorded on whichever goroutine refused admission). The
// admission path already locks and allocates, so a small mutex queue
// is the honest fit; it is bounded like the SPSC rings.
type SharedSink struct {
	j *Journal
}

// SharedSink returns the multi-producer sink for off-shard traces.
func (j *Journal) SharedSink() *SharedSink {
	if j == nil {
		return nil
	}
	return &SharedSink{j: j}
}

// Record enqueues one sealed trace; a full queue drops it (counted).
func (s *SharedSink) Record(st *trace.SessionTrace, aborted bool) {
	if s == nil || st == nil {
		return
	}
	j := s.j
	j.sharedMu.Lock()
	if len(j.shared) < j.cfg.QueueDepth {
		j.shared = append(j.shared, st)
		j.sharedMu.Unlock()
		j.nudge()
		return
	}
	j.sharedMu.Unlock()
	j.dropped.Inc()
}
