package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Segment layout:
//
//	header   "GJRNSEG1" + u32 format version + u32 reserved (16 bytes)
//	records  [u32 payload length][u32 CRC32-C of payload][payload]...
//
// Records carry no sync marker, so a CRC mismatch ends the readable
// prefix of a segment: in the newest segment that is the torn tail a
// crash mid-append leaves behind (truncated on reopen); in a sealed
// segment it is bitrot, counted and never served.
const (
	segMagic      = "GJRNSEG1"
	segVersion    = 1
	segHeaderLen  = 16
	recHeaderLen  = 8
	segFilePrefix = "journal-"
	segFileSuffix = ".seg"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segmentHeader renders the 16-byte segment header.
func segmentHeader() []byte {
	h := make([]byte, 0, segHeaderLen)
	h = append(h, segMagic...)
	h = appendU32(h, segVersion)
	h = appendU32(h, 0)
	return h
}

// appendRecord frames one payload onto dst.
func appendRecord(dst, payload []byte) []byte {
	dst = appendU32(dst, uint32(len(payload)))
	dst = appendU32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// scanned is one decoded record with its location inside the segment.
type scanned struct {
	off   int64 // frame start (header included)
	size  int64 // frame length
	entry *Entry
}

// scanSegment walks a whole segment image and returns every valid
// record in file order plus the length of the valid prefix. tail
// reports how many bytes past the valid prefix the image still holds
// (0 means the segment ends exactly at the last valid record). The
// scan is total on arbitrary bytes — the fuzz target drives it raw.
func scanSegment(data []byte) (recs []scanned, validLen int64, tail int64, err error) {
	if len(data) < segHeaderLen || string(data[:len(segMagic)]) != segMagic {
		return nil, 0, int64(len(data)), fmt.Errorf("journal: bad segment header")
	}
	if v := binary.LittleEndian.Uint32(data[len(segMagic):]); v != segVersion {
		return nil, 0, int64(len(data)), fmt.Errorf("journal: unknown segment version %d", v)
	}
	off := int64(segHeaderLen)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return recs, off, 0, nil
		}
		if len(rest) < recHeaderLen {
			return recs, off, int64(len(rest)), nil
		}
		n := binary.LittleEndian.Uint32(rest)
		if n > MaxRecordBytes {
			return recs, off, int64(len(rest)), nil
		}
		want := binary.LittleEndian.Uint32(rest[4:])
		end := recHeaderLen + int(n)
		if len(rest) < end {
			return recs, off, int64(len(rest)), nil
		}
		payload := rest[recHeaderLen:end]
		if crc32.Checksum(payload, crcTable) != want {
			return recs, off, int64(len(rest)), nil
		}
		e, derr := decodeEntry(payload)
		if derr != nil {
			// The frame checksummed clean but does not decode: treat it
			// like corruption — stop the readable prefix here.
			return recs, off, int64(len(rest)), nil
		}
		recs = append(recs, scanned{off: off, size: int64(end), entry: e})
		off += int64(end)
	}
}
