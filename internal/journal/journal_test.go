package journal

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"testing"
	"time"

	"inaudible/internal/defense"
	"inaudible/internal/trace"
)

// waitRecords blocks until the journal has appended n records (the
// writer is asynchronous) or fails the test.
func waitRecords(t *testing.T, j *Journal, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for j.records.Value() < n {
		if time.Now().After(deadline) {
			t.Fatalf("journal stuck at %d records, want %d (dropped=%d)", j.records.Value(), n, j.dropped.Value())
		}
		time.Sleep(time.Millisecond)
	}
}

// endSession runs one synthetic session through a recorder and hands
// the sealed trace to sink.
func endSession(rec *trace.Recorder, sink *ShardSink, key uint64, score float64, attack bool) *trace.SessionTrace {
	st := rec.Start(key, 48000, 0, false, nil)
	st.RecordVerdict(false, score/2, false)
	st.RecordFeatures(false, []float64{score / 2, 1, 2, 3, 4})
	st.RecordVerdict(true, score, attack)
	st.RecordFeatures(true, []float64{score, 1, 2, 3, 4})
	st.RecordFinalized(2 * time.Millisecond)
	rec.End(st, false)
	sink.Record(st, false)
	return st
}

func TestEntryRoundTrip(t *testing.T) {
	e := &Entry{
		Seq:         42,
		Session:     7,
		Key:         0xdeadbeef,
		RateHz:      48000,
		Shard:       3,
		State:       "done",
		Degraded:    true,
		Notable:     trace.NotableAttack | trace.NotableDegraded,
		StartUnixNS: 1700000000123456789,
		DurationNS:  987654321,
		EventsTotal: 12,
		Node:        "n1",
		Model:       "svm/seed=1/quick=true",
		Build:       "v0.10.0",
		Events: []trace.Event{
			{Seq: 1, Kind: trace.KindAdmitted, At: 10, A: 1, B: 3},
			{Seq: 2, Kind: trace.KindFinalVerdict, At: 2000, A: math.Pi, B: 1},
		},
		FeatureWidth: 2,
		FrameIdx:     []uint32{0, 5},
		Frames:       []float64{1.5, -2.5, math.Inf(1), math.SmallestNonzeroFloat64},
	}
	payload := appendEntry(nil, e)
	got, err := decodeEntry(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(e, got) {
		t.Fatalf("round trip mismatch:\nin  %+v\nout %+v", e, got)
	}
	// Truncation at every byte boundary must error, never panic.
	for i := 0; i < len(payload); i++ {
		if _, err := decodeEntry(payload[:i]); err == nil {
			t.Fatalf("decode of %d-byte prefix succeeded", i)
		}
	}
}

func TestAppendReopenAndOrder(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Config{Dir: dir, Node: "n1", Model: "m", Build: "b"})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(trace.Config{})
	sink := j.ShardSink(0)
	for i := 0; i < 10; i++ {
		endSession(rec, sink, uint64(i), float64(i)-5, i%2 == 0)
	}
	waitRecords(t, j, 10)
	j.Close()

	j2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s := j2.Stats()
	if s.Retained != 10 || s.Corrupt != 0 || s.TornTails != 0 || s.Recovered != 10 {
		t.Fatalf("reopen stats: %+v", s)
	}
	seqs := j2.Seqs()
	if len(seqs) != 10 || !sort.SliceIsSorted(seqs, func(a, b int) bool { return seqs[a] < seqs[b] }) {
		t.Fatalf("seqs not ascending: %v", seqs)
	}
	e, err := j2.Get(seqs[3])
	if err != nil {
		t.Fatal(err)
	}
	if e.Node != "n1" || e.Model != "m" || e.Build != "b" || e.State != "done" {
		t.Fatalf("identity lost: %+v", e)
	}
	if e.FeatureWidth != 5 || len(e.FrameIdx) != 2 {
		t.Fatalf("frames lost: %+v", e)
	}
	// Appends continue after the recovered tail.
	rec2 := trace.NewRecorder(trace.Config{})
	endSession(rec2, j2.ShardSink(0), 99, 1, true)
	waitRecords(t, j2, 1)
	got := j2.Seqs()
	if got[len(got)-1] != seqs[len(seqs)-1]+1 {
		t.Fatalf("post-recovery seq not contiguous: %v", got)
	}
}

// TestTornTailRecovery pins the crash-safety contract: a reopened
// journal loses at most the torn tail record and never serves a
// corrupt or out-of-order record.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(Config{Dir: dir})
	rec := trace.NewRecorder(trace.Config{})
	sink := j.ShardSink(0)
	for i := 0; i < 5; i++ {
		endSession(rec, sink, uint64(i), 1, false)
	}
	waitRecords(t, j, 5)
	j.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "journal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("segments: %v", segs)
	}
	// Simulate a crash mid-append: chop the last 7 bytes.
	data, _ := os.ReadFile(segs[0])
	if err := os.WriteFile(segs[0], data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s := j2.Stats()
	if s.Retained != 4 || s.TornTails != 1 || s.Corrupt != 0 {
		t.Fatalf("torn-tail stats: %+v", s)
	}
	for _, seq := range j2.Seqs() {
		if _, err := j2.Get(seq); err != nil {
			t.Fatalf("recovered record %d unreadable: %v", seq, err)
		}
	}
	// The truncated file must hold exactly the 4 valid records.
	rec2 := trace.NewRecorder(trace.Config{})
	endSession(rec2, j2.ShardSink(0), 9, 1, false)
	waitRecords(t, j2, 1)
	j2.Close()
	j3, _ := Open(Config{Dir: dir, ReadOnly: true})
	if s := j3.Stats(); s.Retained != 5 || s.Corrupt != 0 || s.TornTails != 0 {
		t.Fatalf("post-truncate append stats: %+v", s)
	}
}

// TestSealedSegmentCorruption: bitrot inside an older segment is
// counted, the valid prefix stays served, and nothing is truncated.
func TestSealedSegmentCorruption(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation (floor is 64 KiB, so use many
	// records — feature frames make each ~400B; instead write enough).
	j, _ := Open(Config{Dir: dir, SegmentBytes: 64 << 10})
	rec := trace.NewRecorder(trace.Config{})
	sink := j.ShardSink(0)
	const n = 400
	for i := 0; i < n; i++ {
		endSession(rec, sink, uint64(i), 1, false)
		if i%64 == 0 {
			waitRecords(t, j, uint64(i+1)) // keep the ring ahead of the writer
		}
	}
	waitRecords(t, j, n)
	j.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "journal-*.seg"))
	sort.Strings(segs)
	if len(segs) < 2 {
		t.Skipf("only %d segments, cannot test sealed corruption", len(segs))
	}
	data, _ := os.ReadFile(segs[0])
	size := len(data)
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s := j2.Stats()
	if s.Corrupt == 0 || s.TornTails != 0 {
		t.Fatalf("sealed corruption stats: %+v", s)
	}
	if s.Retained == n || s.Retained == 0 {
		t.Fatalf("retained %d of %d: want a partial set", s.Retained, n)
	}
	if st, _ := os.Stat(segs[0]); int(st.Size()) != size {
		t.Fatalf("sealed segment was truncated: %d -> %d", size, st.Size())
	}
	seqs := j2.Seqs()
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("out-of-order seqs after corruption: %v", seqs[i-1:i+1])
		}
	}
}

func TestRotationAndByteRetention(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(Config{Dir: dir, SegmentBytes: 64 << 10, MaxBytes: 160 << 10})
	defer j.Close()
	rec := trace.NewRecorder(trace.Config{})
	sink := j.ShardSink(0)
	const n = 1200
	for i := 0; i < n; i++ {
		endSession(rec, sink, uint64(i), 1, false)
		if i%64 == 0 {
			waitRecords(t, j, uint64(i+1)) // keep the 256-deep ring ahead of the writer
		}
	}
	waitRecords(t, j, n)
	s := j.Stats()
	if s.Deleted == 0 {
		t.Fatalf("no segments deleted under byte pressure: %+v", s)
	}
	if s.Bytes > (160<<10)+(64<<10) {
		t.Fatalf("retention did not bound bytes: %+v", s)
	}
	if s.Retained == n {
		t.Fatalf("index kept expired records: %+v", s)
	}
	// Oldest retained records must still be readable; expired ones 404.
	seqs := j.Seqs()
	if _, err := j.Get(seqs[0]); err != nil {
		t.Fatalf("oldest retained record unreadable: %v", err)
	}
	if _, err := j.Get(1); err == nil && seqs[0] > 1 {
		t.Fatal("expired record still served")
	}
}

// TestSinkDropWhenFullAndZeroAlloc pins the handoff contract: a full
// ring drops (counted) instead of blocking, and Record never
// allocates — on the store path or the drop path — so journaling
// cannot disturb the shard worker's 0 allocs/frame budget.
func TestSinkDropWhenFullAndZeroAlloc(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Config{Dir: dir, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	j.Close() // stop the writer so the ring fills deterministically
	rec := trace.NewRecorder(trace.Config{})
	st := rec.Start(1, 48000, 0, false, nil)
	rec.End(st, false)

	s := j.ShardSink(0)
	for i := 0; i < 8; i++ {
		s.Record(st, false)
	}
	if j.dropped.Value() != 0 {
		t.Fatalf("drops before the ring was full: %d", j.dropped.Value())
	}
	s.Record(st, false)
	if j.dropped.Value() != 1 {
		t.Fatalf("full ring did not drop: %d", j.dropped.Value())
	}

	if allocs := testing.AllocsPerRun(200, func() { s.Record(st, false) }); allocs != 0 {
		t.Fatalf("drop-path Record allocates %v/op", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		s.pop()
		s.Record(st, false)
	}); allocs != 0 {
		t.Fatalf("store-path Record allocates %v/op", allocs)
	}
}

// TestJournalHTTPAndPagination drives the forensic query plane over a
// populated journal: paged listing chained by next_after, a full entry
// view, and the 404/400 edges.
func TestJournalHTTPAndPagination(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(Config{Dir: dir, Node: "n1"})
	defer j.Close()
	rec := trace.NewRecorder(trace.Config{})
	sink := j.ShardSink(0)
	for i := 0; i < 10; i++ {
		endSession(rec, sink, uint64(i), float64(i), i == 7)
	}
	waitRecords(t, j, 10)

	get := func(path string) (int, []byte) {
		w := httptest.NewRecorder()
		j.ServeJournal(w, httptest.NewRequest("GET", path, nil))
		return w.Result().StatusCode, w.Body.Bytes()
	}
	var got []uint64
	q := "/journal?limit=4"
	for pages := 0; ; pages++ {
		if pages > 5 {
			t.Fatal("pagination did not terminate")
		}
		code, body := get(q)
		if code != 200 {
			t.Fatalf("%s -> %d", q, code)
		}
		var list ListResponse
		if err := json.Unmarshal(body, &list); err != nil {
			t.Fatalf("list decode: %v", err)
		}
		if list.Stats.Corrupt != 0 {
			t.Fatalf("corrupt records reported: %+v", list.Stats)
		}
		for _, s := range list.Sessions {
			got = append(got, s.Seq)
		}
		if list.NextAfter == 0 {
			break
		}
		q = "/journal?limit=4&after=" + strconv.FormatUint(list.NextAfter, 10)
	}
	if len(got) != 10 {
		t.Fatalf("paged walk saw %d records: %v", len(got), got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] >= got[i-1] {
			t.Fatalf("pages not newest-first: %v", got)
		}
	}

	code, body := get("/journal/" + strconv.FormatUint(got[0], 10))
	if code != 200 {
		t.Fatalf("entry fetch -> %d", code)
	}
	var view EntryView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatalf("entry decode: %v", err)
	}
	if len(view.Events) == 0 || view.Node != "n1" || len(view.FrameViews) != 2 {
		t.Fatalf("entry view: %+v", view)
	}
	if code, _ := get("/journal/999999"); code != 404 {
		t.Fatalf("missing record -> %d, want 404", code)
	}
	if code, _ := get("/journal/xyz"); code != 400 {
		t.Fatalf("bad seq -> %d, want 400", code)
	}
	var nilJ *Journal
	w := httptest.NewRecorder()
	nilJ.ServeJournal(w, httptest.NewRequest("GET", "/journal", nil))
	if w.Result().StatusCode != 404 {
		t.Fatalf("nil journal -> %d, want 404", w.Result().StatusCode)
	}
}

// TestReplayParityAndDiff pins the replay contract: the recording
// detector reproduces every stored verdict bit-identically; a
// candidate detector yields a structured, countable diff.
func TestReplayParityAndDiff(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(Config{Dir: dir, Model: "threshold"})
	rec := trace.NewRecorder(trace.Config{})
	sink := j.ShardSink(0)
	det := &defense.ThresholdDetector{
		Thresholds: []float64{0, 0, 0, 0, 0},
		AttackHigh: []bool{true, true, true, true, true},
		Valid:      []bool{true, false, false, false, false},
	}

	// Sessions scored exactly as the serving path does: Score/Predict
	// on the feature vector, vector captured alongside the verdict.
	for i := 0; i < 12; i++ {
		st := rec.Start(uint64(i), 48000, 0, false, nil)
		vec := []float64{float64(i) - 6, 1, 0.5, 2, 3}
		st.RecordVerdict(false, det.Score(vec), det.Predict(vec))
		st.RecordFeatures(false, vec)
		fvec := []float64{float64(i) - 5.5, 1, 0.5, 2, 3}
		st.RecordVerdict(true, det.Score(fvec), det.Predict(fvec))
		st.RecordFeatures(true, fvec)
		rec.End(st, false)
		sink.Record(st, false)
	}
	waitRecords(t, j, 12)

	same, err := j.Replay(det, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !same.Identical || same.Replayed != 12 || same.Verdicts != 24 || same.FinalVerdicts != 12 {
		t.Fatalf("same-detector replay not identical: %+v", same)
	}

	cand := &defense.ThresholdDetector{ // shifted threshold: every score moves
		Thresholds: []float64{100, 0, 0, 0, 0},
		AttackHigh: []bool{true, true, true, true, true},
		Valid:      []bool{true, false, false, false, false},
	}
	diff, err := j.Replay(cand, ReplayOptions{MaxDiffs: 5})
	if err != nil {
		t.Fatal(err)
	}
	if diff.Identical || diff.ScoreMismatch != 24 || diff.AttackFlips == 0 {
		t.Fatalf("candidate replay reported no divergence: %+v", diff)
	}
	if len(diff.Diffs) != 5 {
		t.Fatalf("diff cap not applied: %d", len(diff.Diffs))
	}
	d := diff.Diffs[0]
	if d.RecordedScore == d.ReplayScore || d.Session == 0 && d.Seq == 0 {
		t.Fatalf("diff not structured: %+v", d)
	}
	j.Close()
}
