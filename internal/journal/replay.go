package journal

import (
	"math"

	"inaudible/internal/defense"
	"inaudible/internal/trace"
)

// ReplayOptions tunes a replay pass.
type ReplayOptions struct {
	// Limit caps how many sessions are replayed (0 = all retained).
	Limit int
	// MaxDiffs caps how many per-verdict diffs the report itemizes
	// (default 100); the aggregate counters always cover everything.
	MaxDiffs int
}

// VerdictDiff is one divergent verdict: the recorded detector decision
// against the candidate's on the identical feature vector.
type VerdictDiff struct {
	Seq            uint64  `json:"seq"`
	Session        uint64  `json:"session"`
	Verdict        uint32  `json:"verdict"` // ordinal within the session
	Final          bool    `json:"final"`
	RecordedScore  float64 `json:"recorded_score"`
	ReplayScore    float64 `json:"replay_score"`
	RecordedAttack bool    `json:"recorded_attack"`
	ReplayAttack   bool    `json:"replay_attack"`
}

// Report is the structured outcome of a replay pass. With the same
// detector that produced the journal, Identical must hold: scores are
// stored as raw IEEE-754 bits and Score is deterministic, so replay
// reproduces them bit-for-bit (wall-clock latency fields are the only
// thing a journal cannot replay).
type Report struct {
	Sessions       int           `json:"sessions"`
	Replayed       int           `json:"replayed"`
	SkippedNoFrame int           `json:"skipped_no_features"`
	ReadErrors     int           `json:"read_errors"`
	Verdicts       int           `json:"verdicts_compared"`
	FinalVerdicts  int           `json:"final_verdicts_compared"`
	ScoreMismatch  int           `json:"score_mismatches"`
	AttackFlips    int           `json:"attack_flips"`
	FinalFlips     int           `json:"final_attack_flips"`
	MaxScoreDelta  float64       `json:"max_score_delta"`
	Identical      bool          `json:"identical"`
	Diffs          []VerdictDiff `json:"diffs,omitempty"`
}

// Replay re-scores every stored feature frame through det and diffs
// the candidate's verdicts against the recorded ones. Frames are
// matched to verdict events by the stored verdict ordinal, so a
// bounded capture (fewer frames than verdicts) still compares exactly
// the verdicts it kept.
func (j *Journal) Replay(det defense.Detector, opt ReplayOptions) (*Report, error) {
	if opt.MaxDiffs <= 0 {
		opt.MaxDiffs = 100
	}
	rep := &Report{}
	for _, seq := range j.Seqs() {
		if opt.Limit > 0 && rep.Sessions == opt.Limit {
			break
		}
		rep.Sessions++
		e, err := j.Get(seq)
		if err != nil {
			rep.ReadErrors++
			continue
		}
		if len(e.FrameIdx) == 0 {
			rep.SkippedNoFrame++
			continue
		}
		// Verdict events in emission order; frame ordinals index this.
		var verdicts []trace.Event
		for _, ev := range e.Events {
			if ev.Kind == trace.KindInterimVerdict || ev.Kind == trace.KindFinalVerdict {
				verdicts = append(verdicts, ev)
			}
		}
		replayed := false
		w := e.FeatureWidth
		for i, ord := range e.FrameIdx {
			if int(ord) >= len(verdicts) {
				continue // verdict event rotated out of the bounded ring
			}
			ev := verdicts[ord]
			vec := e.Frames[i*w : (i+1)*w]
			score := det.Score(vec)
			attack := det.Predict(vec)
			recAttack := ev.B == 1
			final := ev.Kind == trace.KindFinalVerdict
			replayed = true
			rep.Verdicts++
			if final {
				rep.FinalVerdicts++
			}
			mismatch := math.Float64bits(score) != math.Float64bits(ev.A)
			if mismatch {
				rep.ScoreMismatch++
				if d := math.Abs(score - ev.A); d > rep.MaxScoreDelta {
					rep.MaxScoreDelta = d
				}
			}
			if attack != recAttack {
				rep.AttackFlips++
				if final {
					rep.FinalFlips++
				}
			}
			if (mismatch || attack != recAttack) && len(rep.Diffs) < opt.MaxDiffs {
				rep.Diffs = append(rep.Diffs, VerdictDiff{
					Seq:            e.Seq,
					Session:        e.Session,
					Verdict:        ord,
					Final:          final,
					RecordedScore:  ev.A,
					ReplayScore:    score,
					RecordedAttack: recAttack,
					ReplayAttack:   attack,
				})
			}
		}
		if replayed {
			rep.Replayed++
		}
	}
	rep.Identical = rep.ScoreMismatch == 0 && rep.AttackFlips == 0 && rep.ReadErrors == 0
	return rep, nil
}
