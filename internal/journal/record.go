// Package journal is the fleet's durable session journal: an
// append-only, CRC-framed, segment-rotated WAL that records every
// session's lifecycle — admission, cascade escalations, interim and
// final verdicts, finalization latency, and (for sessions within the
// bounded capture budget) the feature frames that fed the detector —
// so forensic queries and regression replay survive process restarts.
//
// The write path is built not to disturb the fleet's 0 allocs/frame
// contract: shard workers hand sealed *trace.SessionTrace pointers to
// the journal over lock-free SPSC rings (one per shard), and a single
// writer goroutine does all encoding, file I/O, rotation and
// retention. Sessions are journaled at close, never per frame, so the
// hot path cost is one ring store.
//
// On disk a journal is a directory of segments. Each segment starts
// with a 16-byte header and holds length-prefixed, CRC-framed records
// in strictly increasing sequence order. Recovery scans every segment,
// truncates a torn tail at the last valid record (crash mid-append),
// and refuses to serve anything past a CRC mismatch — a reopened
// journal loses at most the torn tail, never yields a corrupt or
// out-of-order record.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"inaudible/internal/trace"
)

// Decode caps: a record claiming more than these is corrupt by
// definition, which keeps the decoder total on fuzzed input and bounds
// what one record can make the reader allocate. They comfortably
// exceed anything the bounded capture budgets can produce.
const (
	entryVersion   = 1
	maxEvents      = 4096
	maxStringLen   = 1024
	maxFrames      = 4096
	maxFrameWidth  = 64
	MaxRecordBytes = 1 << 20
)

// Entry is one journaled session record — the durable form of a sealed
// flight-recorder trace plus the identity of the process that wrote
// it.
type Entry struct {
	Seq         uint64 // journal-wide sequence number, assigned at append
	Session     uint64 // recorder session serial
	Key         uint64 // fleet affinity key
	RateHz      float64
	Shard       int32 // -1 for rejected sessions
	State       string
	Degraded    bool
	Notable     trace.Notable // retention-reason bitmask
	StartUnixNS int64
	DurationNS  int64
	EventsTotal uint64 // events recorded (the ring may retain fewer)
	Node        string
	Model       string // detector identity (kind/seed/quick)
	Build       string // build version of the writing process

	Events []trace.Event

	// Feature frames: detector-input vectors tagged with the ordinal of
	// the verdict they fed. Frames is flat, len(FrameIdx)*FeatureWidth.
	FeatureWidth int
	FrameIdx     []uint32
	Frames       []float64
}

// session states on the wire (trace state names, frozen as codes).
var stateCodes = map[string]uint8{"done": 1, "aborted": 2, "rejected": 3, "live": 4}
var stateNames = map[uint8]string{1: "done", 2: "aborted", 3: "rejected", 4: "live"}

// appendEntry encodes e's payload (without the record frame) onto dst.
// All integers are little-endian; floats are raw IEEE-754 bits, so a
// decoded score replays bit-identically.
func appendEntry(dst []byte, e *Entry) []byte {
	dst = appendU16(dst, entryVersion)
	dst = appendU64(dst, e.Seq)
	dst = appendU64(dst, e.Session)
	dst = appendU64(dst, e.Key)
	dst = appendF64(dst, e.RateHz)
	dst = appendU32(dst, uint32(e.Shard))
	var flags uint8
	if e.Degraded {
		flags |= 1
	}
	dst = append(dst, flags, stateCodes[e.State])
	dst = appendU32(dst, uint32(e.Notable))
	dst = appendU64(dst, uint64(e.StartUnixNS))
	dst = appendU64(dst, uint64(e.DurationNS))
	dst = appendU64(dst, e.EventsTotal)
	dst = appendStr(dst, e.Node)
	dst = appendStr(dst, e.Model)
	dst = appendStr(dst, e.Build)

	nev := len(e.Events)
	if nev > maxEvents {
		nev = maxEvents
	}
	dst = appendU32(dst, uint32(nev))
	for _, ev := range e.Events[:nev] {
		dst = appendU64(dst, ev.Seq)
		dst = appendU32(dst, uint32(ev.Kind))
		dst = appendU64(dst, uint64(ev.At))
		dst = appendF64(dst, ev.A)
		dst = appendF64(dst, ev.B)
	}

	w, nfr := e.FeatureWidth, len(e.FrameIdx)
	if w <= 0 || w > maxFrameWidth || nfr*w != len(e.Frames) {
		w, nfr = 0, 0
	}
	if nfr > maxFrames {
		nfr = maxFrames
	}
	dst = appendU16(dst, uint16(w))
	dst = appendU32(dst, uint32(nfr))
	for i := 0; i < nfr; i++ {
		dst = appendU32(dst, e.FrameIdx[i])
		for _, v := range e.Frames[i*w : (i+1)*w] {
			dst = appendF64(dst, v)
		}
	}
	return dst
}

var errTruncated = errors.New("journal: truncated entry payload")

// decodeEntry decodes one record payload. It is total: any input
// either yields an entry or an error, within the package decode caps.
func decodeEntry(p []byte) (*Entry, error) {
	d := &decoder{p: p}
	if v := d.u16(); v != entryVersion {
		if d.err == nil {
			return nil, fmt.Errorf("journal: unknown entry version %d", v)
		}
		return nil, d.err
	}
	e := &Entry{
		Seq:     d.u64(),
		Session: d.u64(),
		Key:     d.u64(),
		RateHz:  d.f64(),
		Shard:   int32(d.u32()),
	}
	flags := d.u8()
	e.Degraded = flags&1 != 0
	state := d.u8()
	e.Notable = trace.Notable(d.u32())
	e.StartUnixNS = int64(d.u64())
	e.DurationNS = int64(d.u64())
	e.EventsTotal = d.u64()
	e.Node = d.str()
	e.Model = d.str()
	e.Build = d.str()

	nev := d.u32()
	if d.err == nil && nev > maxEvents {
		return nil, fmt.Errorf("journal: entry claims %d events (cap %d)", nev, maxEvents)
	}
	if d.err == nil {
		e.Events = make([]trace.Event, 0, nev)
		for i := uint32(0); i < nev && d.err == nil; i++ {
			e.Events = append(e.Events, trace.Event{
				Seq:  d.u64(),
				Kind: trace.Kind(d.u32()),
				At:   int64(d.u64()),
				A:    d.f64(),
				B:    d.f64(),
			})
		}
	}

	w := int(d.u16())
	nfr := d.u32()
	if d.err == nil && (w > maxFrameWidth || nfr > maxFrames) {
		return nil, fmt.Errorf("journal: entry claims %d frames of width %d", nfr, w)
	}
	if d.err == nil && nfr > 0 && w > 0 {
		e.FeatureWidth = w
		e.FrameIdx = make([]uint32, 0, nfr)
		e.Frames = make([]float64, 0, int(nfr)*w)
		for i := uint32(0); i < nfr && d.err == nil; i++ {
			e.FrameIdx = append(e.FrameIdx, d.u32())
			for k := 0; k < w; k++ {
				e.Frames = append(e.Frames, d.f64())
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.p) != d.off {
		return nil, fmt.Errorf("journal: %d trailing bytes after entry", len(d.p)-d.off)
	}
	if name, ok := stateNames[state]; ok {
		e.State = name
	} else {
		e.State = "unknown"
	}
	return e, nil
}

// decoder is a bounds-checked little-endian cursor; the first overrun
// latches err and zeroes every later read.
type decoder struct {
	p   []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil || d.off+n > len(d.p) {
		if d.err == nil {
			d.err = errTruncated
		}
		return nil
	}
	b := d.p[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) str() string {
	n := int(d.u16())
	if d.err == nil && n > maxStringLen {
		d.err = fmt.Errorf("journal: string length %d (cap %d)", n, maxStringLen)
		return ""
	}
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendStr(b []byte, s string) []byte {
	if len(s) > maxStringLen {
		s = s[:maxStringLen]
	}
	b = appendU16(b, uint16(len(s)))
	return append(b, s...)
}
