package journal

import (
	"bytes"
	"testing"

	"inaudible/internal/trace"
)

// FuzzJournalSegmentDecoder throws arbitrary bytes at the segment
// scanner and the record decoder. Both must be total: no panics, no
// unbounded allocation (the decode caps), and on valid images the scan
// must return exactly the records that were framed, in order.
func FuzzJournalSegmentDecoder(f *testing.F) {
	// Seed with a well-formed two-record segment and mutations of it.
	e := &Entry{
		Seq: 1, Session: 2, Key: 3, RateHz: 48000, Shard: 0, State: "done",
		Node: "n", Model: "m", Build: "b",
		Events:       []trace.Event{{Seq: 1, Kind: trace.KindAdmitted, At: 5, A: 0, B: 0}},
		FeatureWidth: 2, FrameIdx: []uint32{0}, Frames: []float64{1, 2},
	}
	img := segmentHeader()
	p1 := appendEntry(nil, e)
	img = appendRecord(img, p1)
	e.Seq = 2
	img = appendRecord(img, appendEntry(nil, e))
	f.Add(img)
	f.Add(img[:len(img)-5])       // torn tail
	f.Add(segmentHeader())        // empty segment
	f.Add([]byte("GJRNSEG1junk")) // short header
	f.Add(bytes.Repeat([]byte{0}, 64))
	f.Add(p1) // bare payload, no header

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, tail, err := scanSegment(data)
		if err != nil {
			return
		}
		if valid < segHeaderLen || valid+tail != int64(len(data)) {
			t.Fatalf("valid %d + tail %d inconsistent with len %d", valid, tail, len(data))
		}
		off := int64(segHeaderLen)
		for i, r := range recs {
			if r.entry == nil {
				t.Fatalf("record %d has nil entry", i)
			}
			if r.off != off {
				t.Fatalf("record %d offset %d, want %d", i, r.off, off)
			}
			off += r.size
			// Re-encode must round-trip through the decoder.
			if _, derr := decodeEntry(appendEntry(nil, r.entry)); derr != nil {
				t.Fatalf("re-encode of decoded entry fails: %v", derr)
			}
		}
		if off != valid {
			t.Fatalf("records end at %d, valid prefix %d", off, valid)
		}
	})
}
