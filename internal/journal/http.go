package journal

import (
	"net/http"
	"strconv"
	"strings"

	"inaudible/internal/telemetry"
	"inaudible/internal/trace"
)

// ListResponse is the /journal body: health stats plus a newest-first
// page of record summaries, chained by next_after like /sessions.
type ListResponse struct {
	Stats     Stats     `json:"stats"`
	Sessions  []Summary `json:"sessions"`
	NextAfter uint64    `json:"next_after,omitempty"`
}

// FrameView is one captured feature frame with the ordinal of the
// verdict it fed.
type FrameView struct {
	Verdict uint32    `json:"verdict"`
	Vector  []float64 `json:"vector"`
}

// EntryView is the /journal/{seq} body: the summary plus the decoded
// event log (rendered with the same field names as the live /sessions
// plane) and any captured feature frames.
type EntryView struct {
	Summary
	RateHz       float64           `json:"rate_hz"`
	EventsTotal  uint64            `json:"events_total"`
	Node         string            `json:"node,omitempty"`
	Build        string            `json:"build,omitempty"`
	Events       []trace.EventView `json:"events"`
	FeatureWidth int               `json:"feature_width,omitempty"`
	FrameViews   []FrameView       `json:"feature_frames_detail,omitempty"`
}

// View renders an entry for the forensic query plane.
func (e *Entry) View() EntryView {
	v := EntryView{
		Summary:      summarize(e),
		RateHz:       e.RateHz,
		EventsTotal:  e.EventsTotal,
		Node:         e.Node,
		Build:        e.Build,
		Events:       make([]trace.EventView, 0, len(e.Events)),
		FeatureWidth: e.FeatureWidth,
	}
	for _, ev := range e.Events {
		v.Events = append(v.Events, trace.EventView{
			Event:  ev.Kind.String(),
			AtMS:   float64(ev.At) / 1e6,
			Fields: ev.FieldMap(),
		})
	}
	w := e.FeatureWidth
	for i, idx := range e.FrameIdx {
		v.FrameViews = append(v.FrameViews, FrameView{Verdict: idx, Vector: e.Frames[i*w : (i+1)*w]})
	}
	return v
}

// ServeJournal handles /journal (paginated listing) and
// /journal/{seq} (one verified record). Nil-safe: a journal-disabled
// process answers 404, matching the recorder's convention, so the
// introspection mux can mount it unconditionally.
func (j *Journal) ServeJournal(w http.ResponseWriter, req *http.Request) {
	if j == nil {
		http.Error(w, `{"error":"journal disabled"}`, http.StatusNotFound)
		return
	}
	rest := strings.Trim(strings.TrimPrefix(req.URL.Path, "/journal"), "/")
	if rest == "" {
		limit, after, err := trace.PageParams(req)
		if err != nil {
			http.Error(w, `{"error":"bad limit or after parameter"}`, http.StatusBadRequest)
			return
		}
		sums, next := j.List(limit, after)
		if sums == nil {
			sums = []Summary{}
		}
		telemetry.WriteJSON(w, ListResponse{Stats: j.Stats(), Sessions: sums, NextAfter: next})
		return
	}
	seq, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		http.Error(w, `{"error":"bad journal sequence number"}`, http.StatusBadRequest)
		return
	}
	e, err := j.Get(seq)
	if err != nil {
		http.Error(w, `{"error":`+strconv.Quote(err.Error())+`}`, http.StatusNotFound)
		return
	}
	telemetry.WriteJSON(w, e.View())
}
