package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"inaudible/internal/telemetry"
	"inaudible/internal/trace"
)

// Config shapes a journal. Zero values take the defaults.
type Config struct {
	// Dir is the journal directory (created if missing in write mode).
	Dir string
	// SegmentBytes is the rotation threshold (default 4 MiB).
	SegmentBytes int64
	// MaxBytes bounds total on-disk size; the oldest sealed segments
	// are deleted to stay under it (default 256 MiB).
	MaxBytes int64
	// MaxAge, when positive, deletes sealed segments whose newest
	// record is older than this.
	MaxAge time.Duration
	// QueueDepth is the per-shard SPSC handoff ring depth (default 256,
	// rounded up to a power of two). A full ring drops the session's
	// journal record — counted, never blocking the shard worker.
	QueueDepth int
	// Node, Model and Build identify the writing process; they are
	// stamped into every record so a replayed verdict can be matched to
	// the detector and binary that produced it.
	Node, Model, Build string
	// Sync fsyncs after every write batch. Off by default: the page
	// cache survives a kill -9 (the crash-safety target); Sync is for
	// surviving kernel panics and power loss at a latency cost.
	Sync bool
	// ReadOnly opens without a writer and never truncates a torn tail
	// (cmd/replay uses this to read a live daemon's journal safely).
	ReadOnly bool
	// Metrics, when non-nil, receives the journal_* instruments.
	Metrics *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 4 << 20
	}
	if c.SegmentBytes < 64<<10 {
		c.SegmentBytes = 64 << 10
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 256 << 20
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	return c
}

// segment is one on-disk segment's index entry.
type segment struct {
	path      string
	first     uint64 // seqs spanned (0,0 while empty)
	last      uint64
	size      int64
	records   int
	lastWrite time.Time // age-retention clock
}

// recLoc locates one record.
type recLoc struct {
	seg  *segment
	off  int64
	size int64
}

// Journal is the durable session journal. One writer goroutine owns
// all file I/O; HTTP readers and Get/List share the index under a
// mutex; shard workers touch only their SPSC sinks.
type Journal struct {
	cfg Config

	mu    sync.Mutex
	index map[uint64]recLoc
	sums  []Summary // ascending seq
	segs  []*segment
	next  uint64 // next seq to assign

	sinkMu sync.Mutex
	sinks  []*ShardSink

	sharedMu sync.Mutex
	shared   []*trace.SessionTrace

	active     *os.File
	activeSize int64

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
	once sync.Once

	records   *telemetry.Counter
	dropped   *telemetry.Counter
	corrupt   *telemetry.Counter
	truncated *telemetry.Counter
	deleted   *telemetry.Counter
	bytesG    *telemetry.Gauge
	segsG     *telemetry.Gauge

	recovered int // records recovered at open
}

// Open opens (write mode: creating, recovering, then appending) a
// journal directory and starts the writer goroutine. In ReadOnly mode
// it only scans: no directory creation, no truncation, no writer.
func Open(cfg Config) (*Journal, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("journal: Config.Dir is required")
	}
	j := &Journal{
		cfg:   cfg,
		index: make(map[uint64]recLoc),
		next:  1,
		wake:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	j.records = reg.NewCounter("journal_records_total", "session records appended to the durable journal")
	j.dropped = reg.NewCounter("journal_dropped_total", "session records dropped because a handoff queue was full")
	j.corrupt = reg.NewCounter("journal_corrupt_records_total", "CRC or decode failures while reading journal records")
	j.truncated = reg.NewCounter("journal_torn_tails_truncated_total", "torn segment tails truncated during crash recovery")
	j.deleted = reg.NewCounter("journal_segments_deleted_total", "sealed segments deleted by byte/age retention")
	j.bytesG = reg.NewGauge("journal_bytes", "total on-disk journal size")
	j.segsG = reg.NewGauge("journal_segments", "journal segment count, including the active one")

	if !cfg.ReadOnly {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
	}
	if err := j.recover(); err != nil {
		return nil, err
	}
	if cfg.ReadOnly {
		close(j.done)
		return j, nil
	}
	if err := j.openActive(); err != nil {
		return nil, err
	}
	j.publishGauges()
	go j.run()
	return j, nil
}

// recover scans every segment in the directory, builds the in-memory
// index, and (write mode) truncates a torn tail in the newest segment.
// A CRC break in an older, sealed segment is bitrot, not a crash
// artifact: everything after it in that segment is counted corrupt and
// skipped, never truncated away.
func (j *Journal) recover() error {
	names, err := filepath.Glob(filepath.Join(j.cfg.Dir, segFilePrefix+"*"+segFileSuffix))
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	sort.Strings(names)
	for i, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		st, _ := os.Stat(name)
		seg := &segment{path: name, size: int64(len(data))}
		if st != nil {
			seg.lastWrite = st.ModTime()
		}
		recs, validLen, tail, scanErr := scanSegment(data)
		last := i == len(names)-1
		switch {
		case scanErr != nil:
			// Unreadable header: nothing to serve from this file. Leave
			// it on disk (write mode never destroys evidence beyond the
			// torn tail) but count it.
			j.corrupt.Inc()
			continue
		case tail > 0 && last && !j.cfg.ReadOnly:
			// Crash artifact: drop the torn tail so appends resume at
			// the last valid record.
			if err := os.Truncate(name, validLen); err != nil {
				return fmt.Errorf("journal: truncating torn tail: %w", err)
			}
			seg.size = validLen
			j.truncated.Inc()
		case tail > 0 && last:
			seg.size = validLen // read-only: ignore, do not touch
		case tail > 0:
			// Sealed segment with a bad region: records past it are
			// unreachable (no resync marker). Count, serve the prefix.
			j.corrupt.Inc()
		}
		for _, r := range recs {
			e := r.entry
			j.index[e.Seq] = recLoc{seg: seg, off: r.off, size: r.size}
			j.sums = append(j.sums, summarize(e))
			if seg.first == 0 {
				seg.first = e.Seq
			}
			seg.last = e.Seq
			seg.records++
			if e.Seq >= j.next {
				j.next = e.Seq + 1
			}
		}
		j.segs = append(j.segs, seg)
	}
	// Serve the global listing in seq order even if segment file names
	// ever interleave.
	sort.Slice(j.sums, func(a, b int) bool { return j.sums[a].Seq < j.sums[b].Seq })
	j.recovered = len(j.sums)
	return nil
}

// openActive resumes appending to the newest segment when it has room,
// or starts a fresh one.
func (j *Journal) openActive() error {
	if n := len(j.segs); n > 0 && j.segs[n-1].size < j.cfg.SegmentBytes {
		seg := j.segs[n-1]
		f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		j.active = f
		j.activeSize = seg.size
		return nil
	}
	return j.rotate()
}

// rotate seals the active segment and opens a new one named by the
// next sequence number it will hold.
func (j *Journal) rotate() error {
	if j.active != nil {
		j.active.Close()
		j.active = nil
	}
	name := filepath.Join(j.cfg.Dir, fmt.Sprintf("%s%016d%s", segFilePrefix, j.next, segFileSuffix))
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write(segmentHeader()); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	seg := &segment{path: name, size: segHeaderLen, lastWrite: time.Now()}
	j.mu.Lock()
	j.segs = append(j.segs, seg)
	j.mu.Unlock()
	j.active = f
	j.activeSize = segHeaderLen
	return nil
}

// nudge wakes the writer without blocking or allocating (hot path).
func (j *Journal) nudge() {
	select {
	case j.wake <- struct{}{}:
	default:
	}
}

// run is the writer goroutine: drain the handoff queues, append,
// rotate, enforce retention, sleep on the wake channel.
func (j *Journal) run() {
	defer close(j.done)
	var buf []byte
	for {
		n := j.drain(&buf)
		if n > 0 {
			if j.cfg.Sync && j.active != nil {
				j.active.Sync()
			}
			j.enforceRetention()
			j.publishGauges()
			continue
		}
		select {
		case <-j.wake:
		case <-j.stop:
			j.drain(&buf)
			if j.active != nil {
				if j.cfg.Sync {
					j.active.Sync()
				}
				j.active.Close()
				j.active = nil
			}
			j.publishGauges()
			return
		}
	}
}

// drain consumes every queued trace once and appends it. Returns how
// many records were written.
func (j *Journal) drain(buf *[]byte) int {
	n := 0
	j.sinkMu.Lock()
	sinks := j.sinks
	j.sinkMu.Unlock()
	for _, s := range sinks {
		for {
			st := s.pop()
			if st == nil {
				break
			}
			j.append(st, buf)
			n++
		}
	}
	j.sharedMu.Lock()
	shared := j.shared
	j.shared = nil
	j.sharedMu.Unlock()
	for _, st := range shared {
		j.append(st, buf)
		n++
	}
	return n
}

// append encodes one sealed trace as the next record in the journal.
func (j *Journal) append(st *trace.SessionTrace, buf *[]byte) {
	if j.activeSize >= j.cfg.SegmentBytes {
		if err := j.rotate(); err != nil {
			j.dropped.Inc()
			return
		}
	}
	e := j.entryFrom(st)
	e.Seq = j.next

	*buf = (*buf)[:0]
	payload := appendEntry(*buf, e)
	*buf = payload
	if len(payload) > MaxRecordBytes {
		j.dropped.Inc() // unreachable within the decode caps; belt and braces
		return
	}
	frame := appendRecord(make([]byte, 0, recHeaderLen+len(payload)), payload)
	if _, err := j.active.Write(frame); err != nil {
		j.dropped.Inc()
		return
	}
	seg := j.segs[len(j.segs)-1]
	loc := recLoc{seg: seg, off: j.activeSize, size: int64(len(frame))}
	j.activeSize += int64(len(frame))

	j.mu.Lock()
	seg.size = j.activeSize
	seg.lastWrite = time.Now()
	if seg.first == 0 {
		seg.first = e.Seq
	}
	seg.last = e.Seq
	seg.records++
	j.index[e.Seq] = loc
	j.sums = append(j.sums, summarize(e))
	j.next++
	j.mu.Unlock()
	j.records.Inc()
}

// entryFrom builds the durable record for a sealed trace. Runs on the
// writer goroutine only — the trace is sealed, so plain reads are
// safe.
func (j *Journal) entryFrom(st *trace.SessionTrace) *Entry {
	e := &Entry{
		Session:     st.ID(),
		Key:         st.Key(),
		RateHz:      st.RateHz(),
		Shard:       int32(st.Shard()),
		State:       st.StateName(),
		Degraded:    st.Degraded(),
		Notable:     st.NotableReasons(),
		StartUnixNS: st.Start().UnixNano(),
		DurationNS:  st.EndNanos(),
		EventsTotal: st.EventsTotal(),
		Node:        j.cfg.Node,
		Model:       j.cfg.Model,
		Build:       j.cfg.Build,
		Events:      st.Events(),
	}
	e.FeatureWidth, e.FrameIdx, e.Frames = st.FeatureFrames()
	return e
}

// enforceRetention deletes sealed segments (never the active one)
// oldest-first while the journal exceeds MaxBytes, then applies the
// MaxAge bound.
func (j *Journal) enforceRetention() {
	for {
		j.mu.Lock()
		var victim *segment
		total := int64(0)
		for _, s := range j.segs {
			total += s.size
		}
		if len(j.segs) > 1 {
			old := j.segs[0]
			over := total > j.cfg.MaxBytes
			aged := j.cfg.MaxAge > 0 && !old.lastWrite.IsZero() && time.Since(old.lastWrite) > j.cfg.MaxAge
			if over || aged {
				victim = old
				j.segs = j.segs[1:]
				j.dropSegmentLocked(victim)
			}
		}
		j.mu.Unlock()
		if victim == nil {
			return
		}
		os.Remove(victim.path)
		j.deleted.Inc()
	}
}

// dropSegmentLocked removes a segment's records from the index.
// Caller holds j.mu.
func (j *Journal) dropSegmentLocked(seg *segment) {
	for seq := seg.first; seq != 0 && seq <= seg.last; seq++ {
		if loc, ok := j.index[seq]; ok && loc.seg == seg {
			delete(j.index, seq)
		}
	}
	keep := j.sums[:0]
	for _, s := range j.sums {
		if _, ok := j.index[s.Seq]; ok {
			keep = append(keep, s)
		}
	}
	j.sums = keep
}

func (j *Journal) publishGauges() {
	j.mu.Lock()
	total := int64(0)
	for _, s := range j.segs {
		total += s.size
	}
	n := len(j.segs)
	j.mu.Unlock()
	j.bytesG.Set(total)
	j.segsG.Set(int64(n))
}

// Close drains the queues, seals the active segment and stops the
// writer. Idempotent.
func (j *Journal) Close() {
	if j == nil {
		return
	}
	j.once.Do(func() {
		if j.cfg.ReadOnly {
			return
		}
		close(j.stop)
		<-j.done
	})
}

// Get reads and verifies one record by sequence number. A CRC or
// decode failure (bitrot since the scan) counts as corrupt and errors.
func (j *Journal) Get(seq uint64) (*Entry, error) {
	if j == nil {
		return nil, fmt.Errorf("journal: disabled")
	}
	j.mu.Lock()
	loc, ok := j.index[seq]
	j.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("journal: no record %d (never written, dropped, or expired)", seq)
	}
	f, err := os.Open(loc.seg.path)
	if err != nil {
		j.corrupt.Inc()
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	frame := make([]byte, loc.size)
	if _, err := f.ReadAt(frame, loc.off); err != nil {
		j.corrupt.Inc()
		return nil, fmt.Errorf("journal: record %d: %w", seq, err)
	}
	recs, _, _, scanErr := scanRecordAt(frame)
	if scanErr != nil || len(recs) != 1 || recs[0].entry.Seq != seq {
		j.corrupt.Inc()
		return nil, fmt.Errorf("journal: record %d failed CRC or decode", seq)
	}
	return recs[0].entry, nil
}

// scanRecordAt validates a single framed record image (no segment
// header) using the same total decoder as the segment scan.
func scanRecordAt(frame []byte) ([]scanned, int64, int64, error) {
	img := append(segmentHeader(), frame...)
	recs, valid, tail, err := scanSegment(img)
	if err == nil && (tail != 0 || valid != int64(len(img))) {
		err = fmt.Errorf("journal: partial record")
	}
	return recs, valid, tail, err
}

// Seqs returns every retained sequence number in ascending order.
func (j *Journal) Seqs() []uint64 {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]uint64, len(j.sums))
	for i, s := range j.sums {
		out[i] = s.Seq
	}
	return out
}

// List returns up to limit summaries newest-first, restricted to
// seq < after when after > 0 (the same cursor contract as /sessions).
// limit <= 0 means unbounded. nextAfter is the cursor for the next
// page, 0 when the listing is exhausted.
func (j *Journal) List(limit int, after uint64) (out []Summary, nextAfter uint64) {
	if j == nil {
		return nil, 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := len(j.sums) - 1; i >= 0; i-- {
		s := j.sums[i]
		if after > 0 && s.Seq >= after {
			continue
		}
		if limit > 0 && len(out) == limit {
			return out, out[len(out)-1].Seq
		}
		out = append(out, s)
	}
	return out, 0
}

// Stats is the journal health summary served under /journal and
// checked by guardctl (corrupt must stay 0).
type Stats struct {
	Node      string `json:"node,omitempty"`
	Dir       string `json:"dir"`
	Records   uint64 `json:"records_total"`
	Dropped   uint64 `json:"dropped_total"`
	Corrupt   uint64 `json:"corrupt_records_total"`
	TornTails uint64 `json:"torn_tails_truncated_total"`
	Deleted   uint64 `json:"segments_deleted_total"`
	Segments  int    `json:"segments"`
	Bytes     int64  `json:"bytes"`
	Retained  int    `json:"retained"`
	Recovered int    `json:"recovered_records"`
	OldestSeq uint64 `json:"oldest_seq,omitempty"`
	NewestSeq uint64 `json:"newest_seq,omitempty"`
}

// Stats snapshots the journal's counters and retention state.
func (j *Journal) Stats() Stats {
	if j == nil {
		return Stats{}
	}
	s := Stats{
		Node:      j.cfg.Node,
		Dir:       j.cfg.Dir,
		Records:   j.records.Value(),
		Dropped:   j.dropped.Value(),
		Corrupt:   j.corrupt.Value(),
		TornTails: j.truncated.Value(),
		Deleted:   j.deleted.Value(),
		Recovered: j.recovered,
	}
	j.mu.Lock()
	s.Retained = len(j.sums)
	s.Segments = len(j.segs)
	for _, seg := range j.segs {
		s.Bytes += seg.size
	}
	if len(j.sums) > 0 {
		s.OldestSeq = j.sums[0].Seq
		s.NewestSeq = j.sums[len(j.sums)-1].Seq
	}
	j.mu.Unlock()
	return s
}

// Summary is one record's listing form.
type Summary struct {
	Seq         uint64   `json:"seq"`
	Session     uint64   `json:"session"`
	Key         uint64   `json:"key"`
	Shard       int      `json:"shard"`
	State       string   `json:"state"`
	Degraded    bool     `json:"degraded,omitempty"`
	Notable     []string `json:"notable,omitempty"`
	StartUnixMS int64    `json:"start_unix_ms"`
	DurationMS  float64  `json:"duration_ms"`
	Verdicts    int      `json:"verdicts"`
	FinalScore  float64  `json:"final_score"`
	FinalAttack bool     `json:"final_attack"`
	Frames      int      `json:"feature_frames"`
	Model       string   `json:"model,omitempty"`
}

// summarize derives the listing form from a full entry.
func summarize(e *Entry) Summary {
	s := Summary{
		Seq:         e.Seq,
		Session:     e.Session,
		Key:         e.Key,
		Shard:       int(e.Shard),
		State:       e.State,
		Degraded:    e.Degraded,
		Notable:     e.Notable.Reasons(),
		StartUnixMS: e.StartUnixNS / 1e6,
		DurationMS:  float64(e.DurationNS) / 1e6,
		Frames:      len(e.FrameIdx),
		Model:       e.Model,
	}
	for _, ev := range e.Events {
		switch ev.Kind {
		case trace.KindInterimVerdict:
			s.Verdicts++
		case trace.KindFinalVerdict:
			s.Verdicts++
			s.FinalScore = ev.A
			s.FinalAttack = ev.B == 1
		}
	}
	return s
}
