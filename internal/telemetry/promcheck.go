package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// This file is a strict structural checker for the Prometheus text
// exposition format (version 0.0.4) as WritePrometheus produces it. It
// exists so exposition conformance is a testable contract instead of a
// hope: the telemetry conformance test runs it over a guardd-shaped
// registry, and `guardctl check` runs it against a live /metrics scrape
// in the CI smoke gate.
//
// Checked per metric family:
//
//   - a # HELP line first, then a # TYPE line, then >= 1 sample lines
//     (no interleaving, no TYPE-before-HELP, no family split across the
//     output, no duplicate family names);
//   - metric and label names match the Prometheus grammar; label values
//     are correctly escaped (no raw '"' or '\n'; '\' only as \\ \" \n);
//   - sample values parse as Go floats;
//   - histogram families expose only _bucket/_sum/_count samples, with
//     cumulative non-decreasing bucket counts, a final le="+Inf" bucket
//     equal to _count, and exactly one _sum and one _count;
//   - counter values are non-negative.

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promFamily accumulates one family's lines during the scan.
type promFamily struct {
	name, typ string
	samples   int
	// histogram bookkeeping
	lastBound    float64 // upper bound of the previous bucket
	lastBucket   float64 // cumulative count of the previous bucket
	bucketSeen   bool
	infSeen      bool
	infCount     float64
	sums, counts int
	countValue   float64
}

// CheckExposition validates Prometheus text exposition read from r and
// returns the first structural violation found, or nil. Line numbers in
// errors are 1-based.
func CheckExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	seen := map[string]bool{} // closed families
	var cur *promFamily
	lineNo := 0

	closeFamily := func() error {
		if cur == nil {
			return nil
		}
		if cur.samples == 0 {
			return fmt.Errorf("family %q has HELP/TYPE but no samples", cur.name)
		}
		if cur.typ == "histogram" {
			if !cur.infSeen {
				return fmt.Errorf("histogram %q is missing its le=\"+Inf\" bucket", cur.name)
			}
			if cur.sums != 1 || cur.counts != 1 {
				return fmt.Errorf("histogram %q has %d _sum and %d _count samples, want exactly 1 of each", cur.name, cur.sums, cur.counts)
			}
			if cur.infCount != cur.countValue {
				return fmt.Errorf("histogram %q le=\"+Inf\" bucket %g disagrees with _count %g", cur.name, cur.infCount, cur.countValue)
			}
		}
		seen[cur.name] = true
		cur = nil
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		fail := func(format string, args ...interface{}) error {
			return fmt.Errorf("line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if err := closeFamily(); err != nil {
				return fail("%v", err)
			}
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !promNameRe.MatchString(name) {
				return fail("malformed HELP line %q", line)
			}
			if seen[name] {
				return fail("family %q appears twice", name)
			}
			cur = &promFamily{name: name}
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				return fail("malformed TYPE line %q", line)
			}
			name, typ := parts[0], parts[1]
			if cur == nil || cur.name != name {
				return fail("TYPE for %q without a preceding HELP for it", name)
			}
			if cur.typ != "" {
				return fail("family %q has two TYPE lines", name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fail("unknown metric type %q", typ)
			}
			cur.typ = typ
		case strings.HasPrefix(line, "#"):
			return fail("unknown comment line %q (only # HELP and # TYPE)", line)
		default:
			if cur == nil || cur.typ == "" {
				return fail("sample %q before its family's HELP and TYPE lines", line)
			}
			if err := checkSample(cur, line); err != nil {
				return fail("%v", err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if cur != nil {
		if err := closeFamily(); err != nil {
			return fmt.Errorf("at EOF: %w", err)
		}
	}
	if len(seen) == 0 {
		return fmt.Errorf("no metric families found")
	}
	return nil
}

// checkSample validates one sample line against its family state.
func checkSample(fam *promFamily, line string) error {
	name, labels, value, err := splitSample(line)
	if err != nil {
		return err
	}
	suffix := strings.TrimPrefix(name, fam.name)
	if !strings.HasPrefix(name, fam.name) ||
		(fam.typ == "histogram" && suffix != "_bucket" && suffix != "_sum" && suffix != "_count") ||
		(fam.typ != "histogram" && suffix != "") {
		return fmt.Errorf("sample %q does not belong to family %q (%s)", name, fam.name, fam.typ)
	}
	v, err := strconv.ParseFloat(value, 64)
	if err != nil {
		return fmt.Errorf("sample %q value %q is not a float: %v", name, value, err)
	}
	fam.samples++
	switch {
	case fam.typ == "counter":
		if v < 0 {
			return fmt.Errorf("counter %q has negative value %g", name, v)
		}
	case fam.typ == "histogram" && suffix == "_bucket":
		le, ok := labels["le"]
		if !ok {
			return fmt.Errorf("bucket sample %q has no le label", name)
		}
		if fam.infSeen {
			return fmt.Errorf("histogram %q has buckets after le=\"+Inf\"", fam.name)
		}
		var bound float64
		if le == "+Inf" {
			fam.infSeen = true
			fam.infCount = v
			bound = math.Inf(1)
		} else if bound, err = strconv.ParseFloat(le, 64); err != nil {
			return fmt.Errorf("bucket le=%q is neither a float nor +Inf", le)
		}
		if fam.bucketSeen && bound <= fam.lastBound {
			return fmt.Errorf("histogram %q bucket bounds not ascending (%g after %g)", fam.name, bound, fam.lastBound)
		}
		if fam.bucketSeen && v < fam.lastBucket {
			return fmt.Errorf("histogram %q cumulative bucket counts decrease (%g after %g)", fam.name, v, fam.lastBucket)
		}
		fam.bucketSeen = true
		fam.lastBound = bound
		fam.lastBucket = v
	case fam.typ == "histogram" && suffix == "_sum":
		fam.sums++
	case fam.typ == "histogram" && suffix == "_count":
		fam.counts++
		fam.countValue = v
	}
	return nil
}

// splitSample parses `name{label="value",...} value` (the label block
// optional), enforcing name/label grammar and label-value escaping.
func splitSample(line string) (name string, labels map[string]string, value string, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		name = rest[:brace]
		rest = rest[brace+1:]
		labels = map[string]string{}
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, "", fmt.Errorf("malformed label block in %q", line)
			}
			lname := rest[:eq]
			if !promLabelRe.MatchString(lname) {
				return "", nil, "", fmt.Errorf("bad label name %q", lname)
			}
			if rest[eq+1] != '"' {
				return "", nil, "", fmt.Errorf("label %s value is not quoted", lname)
			}
			rest = rest[eq+2:]
			var val strings.Builder
			closed := false
			for i := 0; i < len(rest); i++ {
				c := rest[i]
				if c == '\\' {
					if i+1 >= len(rest) {
						return "", nil, "", fmt.Errorf("dangling backslash in label %s", lname)
					}
					switch rest[i+1] {
					case '\\', '"':
						val.WriteByte(rest[i+1])
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, "", fmt.Errorf("invalid escape \\%c in label %s", rest[i+1], lname)
					}
					i++
					continue
				}
				if c == '"' {
					rest = rest[i+1:]
					closed = true
					break
				}
				if c == '\n' {
					return "", nil, "", fmt.Errorf("raw newline in label %s", lname)
				}
				val.WriteByte(c)
			}
			if !closed {
				return "", nil, "", fmt.Errorf("unterminated label value in %q", line)
			}
			if _, dup := labels[lname]; dup {
				return "", nil, "", fmt.Errorf("duplicate label %q", lname)
			}
			labels[lname] = val.String()
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			return "", nil, "", fmt.Errorf("malformed label separator in %q", line)
		}
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", nil, "", fmt.Errorf("sample %q has no value", line)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	if !promNameRe.MatchString(name) {
		return "", nil, "", fmt.Errorf("bad metric name %q", name)
	}
	value = strings.TrimSpace(rest)
	if value == "" || strings.ContainsAny(value, " \t") {
		return "", nil, "", fmt.Errorf("sample %q value field malformed", line)
	}
	return name, labels, value, nil
}
