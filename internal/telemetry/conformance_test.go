package telemetry

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestRegistryDuplicates pins the explicit duplicate-name policy:
// Add errors (never a silent overwrite), the NewX constructors are
// idempotent for the same kind, and a kind collision panics.
func TestRegistryDuplicates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("x_total", "first")
	if err := r.Add("x_total", "second", &Counter{}); !errors.Is(err, ErrDuplicateMetric) {
		t.Fatalf("Add on duplicate name: err = %v, want ErrDuplicateMetric", err)
	}
	// The failed Add must not have replaced the registration.
	c.Add(7)
	var b bytes.Buffer
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "x_total 7") {
		t.Fatalf("failed Add overwrote the original counter:\n%s", b.String())
	}

	if got := r.NewCounter("x_total", "again"); got != c {
		t.Fatalf("NewCounter duplicate returned a fresh instrument")
	}
	g := r.NewGauge("g", "gauge")
	if r.NewGauge("g", "again") != g {
		t.Fatalf("NewGauge duplicate returned a fresh instrument")
	}
	h := r.NewHistogram("h_us", "hist", ExpBuckets(1, 2, 4))
	h2 := r.NewHistogram("h_us", "again", ExpBuckets(1, 10, 2))
	if h2 != h {
		t.Fatalf("NewHistogram duplicate returned a fresh instrument")
	}
	if got := len(h2.Dump().Bounds); got != 4 {
		t.Fatalf("duplicate NewHistogram changed bounds: %d, want original 4", got)
	}
	in := r.NewInfo("build_info", "identity", map[string]string{"v": "1"})
	if r.NewInfo("build_info", "identity", map[string]string{"v": "2"}) != in {
		t.Fatalf("NewInfo duplicate returned a fresh instrument")
	}

	defer func() {
		if recover() == nil {
			t.Fatalf("kind collision (counter name reused as gauge) did not panic")
		}
	}()
	r.NewGauge("x_total", "wrong kind")
}

func TestInfoRendering(t *testing.T) {
	r := NewRegistry()
	r.NewInfo("fleet_build_info", "build identity", map[string]string{
		"go_version": "go1.24.0",
		"version":    `weird"quote\back` + "\nline",
	})
	var b bytes.Buffer
	r.WritePrometheus(&b)
	text := b.String()
	want := `fleet_build_info{go_version="go1.24.0",version="weird\"quote\\back\nline"} 1`
	if !strings.Contains(text, want) {
		t.Fatalf("info line wrong.\nwant %s\ngot:\n%s", want, text)
	}
	if err := CheckExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("escaped info line fails the checker: %v", err)
	}
	snap := r.Snapshot()
	labels := snap["fleet_build_info"].(map[string]string)
	if labels["go_version"] != "go1.24.0" {
		t.Fatalf("snapshot labels: %v", labels)
	}
}

// TestCounterVec pins the labeled counter family: children render as
// labeled samples of the family name (which the strict checker must
// accept), With is stable, unknown values panic, and re-registration is
// idempotent like every other instrument.
func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("evicted_total", "retention evictions", "ring", "recent", "notable")
	v.With("recent").Add(3)
	v.With("notable").Inc()
	if v.With("recent") != v.With("recent") {
		t.Fatalf("With is not stable")
	}
	var b bytes.Buffer
	r.WritePrometheus(&b)
	text := b.String()
	for _, want := range []string{
		`evicted_total{ring="recent"} 3`,
		`evicted_total{ring="notable"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
	if err := CheckExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("labeled counter fails the strict checker: %v", err)
	}
	snap := r.Snapshot()["evicted_total"].(map[string]uint64)
	if snap["recent"] != 3 || snap["notable"] != 1 {
		t.Fatalf("snapshot: %v", snap)
	}
	if r.NewCounterVec("evicted_total", "again", "ring", "recent", "notable") != v {
		t.Fatalf("NewCounterVec duplicate returned a fresh instrument")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("unknown label value did not panic")
		}
	}()
	v.With("bogus")
}

func TestHistogramDump(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 5000} {
		h.Observe(v)
	}
	d := h.Dump()
	if len(d.Bounds) != 3 || len(d.Counts) != 4 {
		t.Fatalf("dump shape: %d bounds, %d counts", len(d.Bounds), len(d.Counts))
	}
	wantCounts := []uint64{1, 2, 1, 1}
	for i, w := range wantCounts {
		if d.Counts[i] != w {
			t.Fatalf("counts = %v, want %v", d.Counts, wantCounts)
		}
	}
	if d.Count != 5 || d.Min != 0.5 || d.Max != 5000 || d.Sum != 5060.5 {
		t.Fatalf("moments: %+v", d)
	}
}

// TestCheckExposition covers the checker against good output and a
// gallery of violations.
func TestCheckExposition(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("a_total", "counter").Add(2)
	r.NewGauge("b", "gauge").Set(-3)
	h := r.NewHistogram("c_us", "hist", ExpBuckets(1, 2, 6))
	h.Observe(3)
	h.Observe(1e12)
	r.NewInfo("d_info", "identity", map[string]string{"k": "v\\x\"y"})
	var b bytes.Buffer
	r.WritePrometheus(&b)
	if err := CheckExposition(bytes.NewReader(b.Bytes())); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}

	bad := map[string]string{
		"TYPE before HELP":      "# TYPE x counter\n# HELP x h\nx 1\n",
		"no samples":            "# HELP x h\n# TYPE x counter\n# HELP y h\n# TYPE y counter\ny 1\n",
		"missing +Inf":          "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"bucket count decrease": "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"+Inf vs _count":        "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"missing _sum":          "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n",
		"raw quote in label":    "# HELP x h\n# TYPE x gauge\nx{l=\"a\"b\"} 1\n",
		"bad escape":            "# HELP x h\n# TYPE x gauge\nx{l=\"a\\q\"} 1\n",
		"negative counter":      "# HELP x h\n# TYPE x counter\nx -1\n",
		"non-float value":       "# HELP x h\n# TYPE x gauge\nx one\n",
		"duplicate family":      "# HELP x h\n# TYPE x counter\nx 1\n# HELP x h\n# TYPE x counter\nx 1\n",
		"stray sample":          "loose_metric 1\n",
		"foreign sample":        "# HELP x h\n# TYPE x counter\nx 1\nother 2\n",
	}
	for name, text := range bad {
		if err := CheckExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: checker accepted invalid exposition:\n%s", name, text)
		}
	}
}
