package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 16)) // 1..32768
	for v := 1.0; v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	if got := h.Sum(); got != 500500 {
		t.Fatalf("sum = %g, want 500500", got)
	}
	if got := h.Max(); got != 1000 {
		t.Fatalf("max = %g, want 1000", got)
	}
	// With geometric buckets the interpolation is coarse; accept a
	// factor-of-two window around the true quantiles.
	checks := map[float64]float64{0.5: 500, 0.99: 990}
	for q, want := range checks {
		got := h.Quantile(q)
		if got < want/2 || got > want*2 {
			t.Errorf("q%g = %g, want within [%g, %g]", q, got, want/2, want*2)
		}
	}
	h.Observe(math.NaN()) // must be ignored
	if h.Count() != 1000 {
		t.Fatalf("NaN observation counted")
	}
	// Overflow bucket: values above every bound report the last bound.
	h.Observe(1e12)
	if got := h.Quantile(1); got != 32768 {
		t.Fatalf("overflow quantile = %g, want last bound 32768", got)
	}
}

func TestHistogramIgnoresNonFinite(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 8))
	h.Observe(5)
	h.Observe(10)
	for _, v := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		h.Observe(v)
		if h.Count() != 2 {
			t.Fatalf("non-finite observation %g was counted", v)
		}
	}
	// The real regression: a single +Inf used to make sum (and Mean, and
	// the Prometheus _sum sample) +Inf forever.
	if got := h.Sum(); got != 15 {
		t.Fatalf("sum = %g, want 15 (non-finite values must not touch sum)", got)
	}
	if got := h.Mean(); got != 7.5 {
		t.Fatalf("mean = %g, want 7.5", got)
	}
	if got := h.Max(); got != 10 {
		t.Fatalf("max = %g, want 10", got)
	}
	if got := h.Min(); got != 5 {
		t.Fatalf("min = %g, want 5", got)
	}
}

func TestHistogramNegativeBounds(t *testing.T) {
	// dB-scaled margins: the first bound is negative, so the old
	// first-bucket interpolation from lo = 0.0 produced quantiles far
	// outside the bucket, and the zero-initialised max atomic never
	// recorded a negative maximum.
	bounds := []float64{-48, -40, -32, -24, -16, -8, 0, 8, 16, 24, 32, 40, 48}
	h := NewHistogram(bounds)
	obs := []float64{-50, -49, -45, -41, -33, -20, -12}
	for _, v := range obs {
		h.Observe(v)
	}
	if got := h.Min(); got != -50 {
		t.Fatalf("min = %g, want -50", got)
	}
	if got := h.Max(); got != -12 {
		t.Fatalf("max = %g, want -12 (negative maxima must be tracked)", got)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.95, 1} {
		got := h.Quantile(q)
		if got < -50 || got > -12 {
			t.Errorf("q%g = %g, outside observed range [-50, -12]", q, got)
		}
	}
	// The median observation is -41; its covering bucket is (-48, -40],
	// so a correct interpolation stays inside that bucket.
	if got := h.Quantile(0.5); got < -48 || got > -40 {
		t.Errorf("q0.5 = %g, want within the covering bucket [-48, -40]", got)
	}
	// q=0 exercises the first bucket directly: interpolation must start
	// from the observed minimum, not from 0.
	if got := h.Quantile(0); got != -50 {
		t.Errorf("q0 = %g, want the observed min -50", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 4, 10))
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	want := float64(workers*per) * float64(workers*per-1) / 2
	if h.Sum() != want {
		t.Fatalf("sum = %g, want %g (lost CAS updates)", h.Sum(), want)
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("frames_total", "frames processed")
	g := r.NewGauge("active_sessions", "sessions in flight")
	h := r.NewHistogram("frame_latency_us", "per-frame latency", ExpBuckets(1, 2, 4))
	c.Add(3)
	g.Set(2)
	h.Observe(3)

	var b bytes.Buffer
	r.WritePrometheus(&b)
	text := b.String()
	for _, want := range []string{
		"# TYPE frames_total counter",
		"frames_total 3",
		"# TYPE active_sessions gauge",
		"active_sessions 2",
		"# TYPE frame_latency_us histogram",
		`frame_latency_us_bucket{le="4"} 1`,
		`frame_latency_us_bucket{le="+Inf"} 1`,
		"frame_latency_us_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	snap := r.Snapshot()
	if snap["frames_total"].(uint64) != 3 {
		t.Fatalf("snapshot counter: %v", snap["frames_total"])
	}
	hs := snap["frame_latency_us"].(histogramSnapshot)
	if hs.Count != 1 || hs.Max != 3 {
		t.Fatalf("snapshot histogram: %+v", hs)
	}

	// Same-kind re-registration is idempotent (see TestRegistryDuplicates
	// for the full duplicate-policy matrix).
	if r.NewCounter("frames_total", "dup") != c {
		t.Fatalf("same-kind duplicate did not return the existing counter")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("hits_total", "hits").Add(9)
	l, srv, err := ListenAndServe("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := fmt.Sprintf("http://%s", l.Addr())

	get := func(path string) (string, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		return b.String(), resp.Header.Get("Content-Type")
	}

	if body, _ := get("/healthz"); body != "ok\n" {
		t.Fatalf("/healthz = %q", body)
	}
	if body, ct := get("/metrics"); !strings.Contains(body, "hits_total 9") || !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics = %q (%s)", body, ct)
	}
	body, ct := get("/varz")
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/varz content type %s", ct)
	}
	var varz map[string]interface{}
	if err := json.Unmarshal([]byte(body), &varz); err != nil {
		t.Fatalf("/varz not JSON: %v (%q)", err, body)
	}
	if varz["hits_total"].(float64) != 9 {
		t.Fatalf("/varz hits_total = %v", varz["hits_total"])
	}
}

func TestObserveNoAlloc(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 24))
	var c Counter
	var g Gauge
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(1)
		h.Observe(37)
	})
	if allocs != 0 {
		t.Fatalf("hot-path instruments allocated %v times per run, want 0", allocs)
	}
}
