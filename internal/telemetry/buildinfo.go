package telemetry

import (
	"runtime"
	"runtime/debug"
	"time"
)

// RegisterBuildInfo exports a serving process's identity: a
// fleet_build_info Info gauge carrying version/runtime labels plus the
// process's cluster node name and role, and fleet_start_time_seconds
// for uptime arithmetic (time() - fleet_start_time_seconds).
//
// The node label is the multi-node scrape story: every process keeps
// the plain fleet_* metric names (a Prometheus scrape distinguishes
// targets by instance), and dashboards join human-friendly node names
// onto any series via fleet_build_info{node="..."} — no per-metric
// prefixing, no name collisions. node may be empty for standalone
// processes; role names what the process does (e.g. "node", "router").
func RegisterBuildInfo(r *Registry, node, role string) {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	labels := map[string]string{
		"version":    version,
		"go_version": runtime.Version(),
		"role":       role,
	}
	if node != "" {
		labels["node"] = node
	}
	r.NewInfo("fleet_build_info", "build and runtime identity of the serving process", labels)
	r.NewGauge("fleet_start_time_seconds", "unix time the process started").Set(time.Now().Unix())
}
