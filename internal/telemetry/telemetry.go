// Package telemetry provides the repository's serving-side metrics:
// atomic counters, gauges and fixed-bucket latency histograms with a
// registry that renders Prometheus text exposition and a JSON snapshot.
//
// The instruments are built for hot loops: Counter.Inc, Gauge.Set and
// Histogram.Observe are single atomic operations with no allocation and
// no locks, so a per-frame observation in the fleet's shard workers
// costs nanoseconds and never serialises shards against each other.
// Registration and rendering are cold paths and may lock.
package telemetry

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed level (active sessions, queue depth).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by delta (use a negative delta to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an instantaneous real-valued level (a tuned threshold,
// a ratio). Set and Value are single atomic operations on the float's
// bit pattern, so it is as hot-loop-safe as Gauge.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set replaces the level.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current level.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: bucket upper bounds are
// frozen at construction, observations are two atomic adds plus a
// binary search over the bounds, and quantiles are estimated by linear
// interpolation inside the covering bucket. The implicit final bucket
// catches everything above the last bound.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf implicit after the last
	counts []atomic.Uint64 // len(bounds)+1
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	min    atomic.Uint64 // float64 bits of the smallest observation, unsetBits before any
	max    atomic.Uint64 // float64 bits of the largest observation, unsetBits before any
}

// unsetBits marks the min/max atomics as "no observation yet". The NaN
// bit pattern is unreachable from Observe (non-finite values are
// dropped), and NaN compares false against everything, so the CAS loops
// below replace it on the first real observation without a special case.
var unsetBits = math.Float64bits(math.NaN())

// NewHistogram builds a histogram over the given ascending upper
// bounds. It panics on empty or unsorted bounds — histogram shapes are
// static configuration, not data.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("telemetry: histogram bounds must be ascending")
	}
	b := append([]float64(nil), bounds...)
	h := &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	h.min.Store(unsetBits)
	h.max.Store(unsetBits)
	return h
}

// ExpBuckets returns n geometric bucket bounds start, start*factor, ...
// — the usual shape for latency distributions.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("telemetry: ExpBuckets wants start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value. Non-finite values (NaN and ±Inf) are
// ignored: a single ±Inf would otherwise poison sum — and with it
// Mean() and the Prometheus _sum sample — irreversibly, and neither has
// a meaningful bucket.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	// sort.SearchFloat64s returns the first bound >= v's bucket; values
	// above every bound index the implicit overflow bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	// The unset sentinel is NaN, which compares false against any v, so
	// both extrema loops fall through to the CAS on first observation.
	for {
		old := h.min.Load()
		if math.Float64frombits(old) <= v {
			break
		}
		if h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Min returns the smallest observation (0 before any).
func (h *Histogram) Min() float64 {
	b := h.min.Load()
	if b == unsetBits {
		return 0
	}
	return math.Float64frombits(b)
}

// Max returns the largest observation (0 before any).
func (h *Histogram) Max() float64 {
	b := h.max.Load()
	if b == unsetBits {
		return 0
	}
	return math.Float64frombits(b)
}

// Mean returns the average observation (0 before any).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// HistogramDump is the full bucket-level export of a histogram:
// everything a report file needs to reconstruct the distribution shape
// (not just point quantiles). Bounds are the configured upper bounds;
// Counts has len(Bounds)+1 entries, the last being the implicit +Inf
// overflow bucket. Counts are per-bucket (not cumulative).
type HistogramDump struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// Dump exports the histogram's buckets and moments. The per-bucket
// loads are not one atomic snapshot; concurrent observations may make
// Count differ from the bucket total by the in-flight few.
func (h *Histogram) Dump() HistogramDump {
	d := HistogramDump{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.Count(),
		Sum:    h.Sum(),
		Min:    h.Min(),
		Max:    h.Max(),
	}
	for i := range h.counts {
		d.Counts[i] = h.counts[i].Load()
	}
	return d
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear
// interpolation inside the covering bucket. Observations in the
// overflow bucket report the last bound (the histogram cannot see
// further). Returns 0 before any observation.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c >= rank && c > 0 {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			var lo float64
			switch {
			case i > 0:
				lo = h.bounds[i-1]
			case h.bounds[0] > 0:
				// All-positive bounds: 0 is a sane implicit lower edge
				// for the first bucket (latency-style histograms).
				lo = 0
			default:
				// The first bound is <= 0 (dB-scaled margins and other
				// signed distributions): 0 sits above the bucket, so
				// interpolate up from the smallest real observation —
				// count > 0 here guarantees min is set, and any
				// observation landing in bucket 0 is <= bounds[0].
				lo = h.Min()
			}
			hi := h.bounds[i]
			frac := (rank - cum) / c
			return h.clampToRange(lo + (hi-lo)*frac)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// clampToRange keeps interpolated quantiles inside the observed
// [min, max] span (interpolation can over- or undershoot when a bucket
// is sparsely filled). Unset extrema (NaN sentinel) compare false and
// leave v untouched.
func (h *Histogram) clampToRange(v float64) float64 {
	if m := math.Float64frombits(h.min.Load()); v < m {
		return m
	}
	if m := math.Float64frombits(h.max.Load()); v > m {
		return m
	}
	return v
}

// Metric is the registry-facing surface of an instrument.
type Metric interface {
	// promType is the Prometheus metric type keyword.
	promType() string
	// writeProm renders the sample lines (not the HELP/TYPE header).
	writeProm(w io.Writer, name string)
	// snapshot returns the JSON-friendly /varz value.
	snapshot() interface{}
}

func (c *Counter) promType() string { return "counter" }
func (c *Counter) writeProm(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", name, c.Value())
}
func (c *Counter) snapshot() interface{} { return c.Value() }

func (g *Gauge) promType() string { return "gauge" }
func (g *Gauge) writeProm(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", name, g.Value())
}
func (g *Gauge) snapshot() interface{} { return g.Value() }

func (g *FloatGauge) promType() string { return "gauge" }
func (g *FloatGauge) writeProm(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %g\n", name, g.Value())
}
func (g *FloatGauge) snapshot() interface{} { return g.Value() }

func (h *Histogram) promType() string { return "histogram" }
func (h *Histogram) writeProm(w io.Writer, name string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
	fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
}

// histogramSnapshot is the /varz form of a histogram.
type histogramSnapshot struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

func (h *Histogram) snapshot() interface{} {
	return histogramSnapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

func formatBound(b float64) string {
	if b == math.Trunc(b) && math.Abs(b) < 1e15 {
		return fmt.Sprintf("%d", int64(b))
	}
	return fmt.Sprintf("%g", b)
}

// Info is a constant identity metric: a gauge pinned at 1 whose labels
// carry build/runtime identity strings (the fleet_build_info pattern —
// scrapes join it against other series to correlate restarts and
// versions). Labels are frozen at construction and rendered in sorted
// key order with Prometheus label-value escaping.
type Info struct {
	labels [][2]string // sorted by key
}

// NewInfo builds an info metric over a copy of labels.
func NewInfo(labels map[string]string) *Info {
	in := &Info{labels: make([][2]string, 0, len(labels))}
	for k, v := range labels {
		in.labels = append(in.labels, [2]string{k, v})
	}
	sort.Slice(in.labels, func(i, j int) bool { return in.labels[i][0] < in.labels[j][0] })
	return in
}

// NewInfo registers and returns an info metric (duplicate-name
// semantics match NewCounter).
func (r *Registry) NewInfo(name, help string, labels map[string]string) *Info {
	return r.intern(name, help, NewInfo(labels)).(*Info)
}

func (in *Info) promType() string { return "gauge" }
func (in *Info) writeProm(w io.Writer, name string) {
	fmt.Fprintf(w, "%s{", name)
	for i, kv := range in.labels {
		if i > 0 {
			io.WriteString(w, ",")
		}
		fmt.Fprintf(w, "%s=\"%s\"", kv[0], EscapeLabelValue(kv[1]))
	}
	io.WriteString(w, "} 1\n")
}
func (in *Info) snapshot() interface{} {
	m := make(map[string]string, len(in.labels))
	for _, kv := range in.labels {
		m[kv[0]] = kv[1]
	}
	return m
}

// CounterVec is a family of counters split by one label with a fixed,
// construction-time set of values (the evicted{ring="recent|notable"}
// pattern). Children are plain Counters, so the hot-path cost of an
// increment is identical to an unlabeled counter; the label join happens
// only at exposition time. The value set is static configuration — an
// unknown value in With panics rather than minting unbounded series.
type CounterVec struct {
	label    string
	values   []string // declaration order, frozen
	children []Counter
}

// NewCounterVec builds a counter family over label with the given value
// set. It panics on an empty value set or a duplicate value.
func NewCounterVec(label string, values ...string) *CounterVec {
	if label == "" || len(values) == 0 {
		panic("telemetry: CounterVec needs a label name and at least one value")
	}
	seen := make(map[string]bool, len(values))
	for _, v := range values {
		if seen[v] {
			panic(fmt.Sprintf("telemetry: CounterVec duplicate label value %q", v))
		}
		seen[v] = true
	}
	return &CounterVec{
		label:    label,
		values:   append([]string(nil), values...),
		children: make([]Counter, len(values)),
	}
}

// NewCounterVec registers and returns a counter family (duplicate-name
// semantics match NewCounter).
func (r *Registry) NewCounterVec(name, help, label string, values ...string) *CounterVec {
	return r.intern(name, help, NewCounterVec(label, values...)).(*CounterVec)
}

// With returns the child counter for one label value. Unknown values
// panic: the set was declared at construction, so a miss is a wiring
// bug, not data.
func (v *CounterVec) With(value string) *Counter {
	for i, lv := range v.values {
		if lv == value {
			return &v.children[i]
		}
	}
	panic(fmt.Sprintf("telemetry: CounterVec label %s has no value %q", v.label, value))
}

func (v *CounterVec) promType() string { return "counter" }
func (v *CounterVec) writeProm(w io.Writer, name string) {
	for i, lv := range v.values {
		fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", name, v.label, EscapeLabelValue(lv), v.children[i].Value())
	}
}
func (v *CounterVec) snapshot() interface{} {
	m := make(map[string]uint64, len(v.values))
	for i, lv := range v.values {
		m[lv] = v.children[i].Value()
	}
	return m
}

// EscapeLabelValue applies Prometheus text-exposition label-value
// escaping: backslash, double-quote and newline must be escaped, in
// that order of rules (backslash first so the others stay unambiguous).
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// entry is one registered metric with its exposition metadata.
type entry struct {
	name, help string
	m          Metric
}

// ErrDuplicateMetric reports an Add of a name the registry already
// holds.
var ErrDuplicateMetric = errors.New("telemetry: duplicate metric name")

// Registry is an ordered collection of named metrics. Names follow
// Prometheus conventions (snake_case, _total suffix on counters, unit
// suffix like _us on histograms) and must be unique.
type Registry struct {
	mu      sync.Mutex
	entries []entry
	names   map[string]Metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]Metric)}
}

// Add registers a metric under a unique name. A duplicate name is an
// explicit error (wrapping ErrDuplicateMetric) and leaves the registry
// unchanged — it never silently overwrites the prior registration.
func (r *Registry) Add(name, help string, m Metric) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.names[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateMetric, name)
	}
	r.names[name] = m
	r.entries = append(r.entries, entry{name: name, help: help, m: m})
	return nil
}

// Lookup returns the metric registered under name, if any.
func (r *Registry) Lookup(name string) (Metric, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.names[name]
	return m, ok
}

// intern implements the NewCounter-family duplicate policy: register
// fresh, or return the instrument already held under the name when it
// has the same concrete kind (so re-wiring an instrument set over one
// registry is idempotent). A kind mismatch panics — two different
// instruments claiming one name is a static wiring bug, and returning
// either would silently mis-account one of them.
func (r *Registry) intern(name, help string, fresh Metric) Metric {
	if err := r.Add(name, help, fresh); err != nil {
		prior, _ := r.Lookup(name)
		if fmt.Sprintf("%T", prior) != fmt.Sprintf("%T", fresh) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %T, already a %T", name, fresh, prior))
		}
		return prior
	}
	return fresh
}

// NewCounter registers and returns a fresh counter. If name is already
// registered as a counter, the existing instrument is returned instead
// (re-registration is idempotent); a different metric kind under the
// same name panics.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.intern(name, help, &Counter{}).(*Counter)
}

// NewGauge registers and returns a fresh gauge (duplicate-name
// semantics match NewCounter).
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.intern(name, help, &Gauge{}).(*Gauge)
}

// NewFloatGauge registers and returns a fresh real-valued gauge
// (duplicate-name semantics match NewCounter).
func (r *Registry) NewFloatGauge(name, help string) *FloatGauge {
	return r.intern(name, help, &FloatGauge{}).(*FloatGauge)
}

// NewHistogram registers and returns a fresh histogram over bounds. If
// name is already registered as a histogram, the existing instrument is
// returned as-is — including its original bounds — and the given bounds
// are ignored; a different metric kind under the same name panics.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	return r.intern(name, help, NewHistogram(bounds)).(*Histogram)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	entries := append([]entry(nil), r.entries...)
	r.mu.Unlock()
	for _, e := range entries {
		fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.m.promType())
		e.m.writeProm(w, e.name)
	}
}

// Snapshot returns name -> current value for every registered metric
// (histograms as {count, mean, p50, p95, p99, max}) — the /varz body.
func (r *Registry) Snapshot() map[string]interface{} {
	r.mu.Lock()
	entries := append([]entry(nil), r.entries...)
	r.mu.Unlock()
	out := make(map[string]interface{}, len(entries))
	for _, e := range entries {
		out[e.name] = e.m.snapshot()
	}
	return out
}
