package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
)

// Handler exposes a registry over HTTP:
//
//	/metrics — Prometheus text exposition
//	/varz    — JSON snapshot (histograms as count/mean/p50/p95/p99/max)
//	/healthz — "ok" (the process is up and serving)
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/varz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// ListenAndServe binds addr and serves Handler(r) in a background
// goroutine, returning the bound listener (useful with ":0") and the
// server for shutdown. Serving errors after a successful bind are
// dropped: metrics are best-effort and must never take the data plane
// down with them.
func ListenAndServe(addr string, r *Registry) (net.Listener, *http.Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go srv.Serve(l)
	return l, srv, nil
}
