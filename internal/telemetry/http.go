package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
)

// Mux returns a fresh ServeMux exposing a registry over HTTP:
//
//	/metrics — Prometheus text exposition
//	/varz    — JSON snapshot (histograms as count/mean/p50/p95/p99/max)
//	/healthz — "ok" (the process is up and serving)
//
// Callers that serve more than metrics (the fleet introspection
// endpoints, net/http/pprof) mount onto the returned mux before
// serving it; Handler and ListenAndServe cover the metrics-only case.
func Mux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/varz", func(w http.ResponseWriter, req *http.Request) {
		WriteJSON(w, r.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// Handler exposes a registry over HTTP (see Mux for the endpoints).
func Handler(r *Registry) http.Handler { return Mux(r) }

// WriteJSON renders v as indented JSON with the right content type —
// the shared encoder of the /varz and introspection endpoints.
func WriteJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// ListenAndServe binds addr and serves Handler(r) in a background
// goroutine, returning the bound listener (useful with ":0") and the
// server for shutdown. Serving errors after a successful bind are
// dropped: metrics are best-effort and must never take the data plane
// down with them.
func ListenAndServe(addr string, r *Registry) (net.Listener, *http.Server, error) {
	return ListenAndServeHandler(addr, Handler(r))
}

// ListenAndServeHandler is ListenAndServe for an arbitrary handler —
// typically a Mux with introspection and pprof routes mounted on top of
// the metrics endpoints.
func ListenAndServeHandler(addr string, h http.Handler) (net.Listener, *http.Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(l)
	return l, srv, nil
}
