package voice

import (
	"hash/fnv"
	"math"
	"math/rand"

	"inaudible/internal/audio"
	"inaudible/internal/dsp"
)

// Profile describes a talker. Synthesis is deterministic for a given
// (text, profile) pair.
type Profile struct {
	Name string
	// F0 is the base pitch in Hz. Human speech stays well above 50 Hz —
	// the fact the defense's sub-50 Hz feature rests on.
	F0 float64
	// FormantScale stretches all formant targets (shorter vocal tracts
	// have higher formants: ~1.0 male, ~1.15 female).
	FormantScale float64
	// RateScale stretches phoneme durations (<1 is faster speech).
	RateScale float64
	// Breathiness mixes aspiration noise into voiced sounds (0..~0.1).
	Breathiness float64
}

// DefaultVoice is an average male talker.
func DefaultVoice() Profile {
	return Profile{Name: "male-1", F0: 118, FormantScale: 1.0, RateScale: 1.0, Breathiness: 0.02}
}

// Profiles returns the talker set used for defense robustness experiments
// (E12): varied pitch, vocal tract length and speaking rate.
func Profiles() []Profile {
	return []Profile{
		DefaultVoice(),
		{Name: "male-2", F0: 98, FormantScale: 0.96, RateScale: 1.1, Breathiness: 0.03},
		{Name: "female-1", F0: 205, FormantScale: 1.15, RateScale: 1.0, Breathiness: 0.025},
		{Name: "female-2", F0: 228, FormantScale: 1.18, RateScale: 0.9, Breathiness: 0.04},
		{Name: "child-1", F0: 260, FormantScale: 1.3, RateScale: 0.95, Breathiness: 0.05},
	}
}

// Synthesize renders the command text at the given sample rate. The result
// is peak-normalised to 0.9; callers set the acoustic level. Unknown words
// return an error.
func Synthesize(text string, p Profile, rate float64) (*audio.Signal, error) {
	words, pauseAfter, err := Transcribe(text)
	if err != nil {
		return nil, err
	}
	s := newSynth(p, rate, seedFor(text, p))
	// Leading silence so filters settle and VAD has context.
	s.silence(0.08)
	total := 0
	for _, w := range words {
		total += len(w)
	}
	done := 0
	for wi, w := range words {
		for _, ph := range w {
			rec, ok := LookupPhoneme(ph)
			if !ok {
				// Transcribe only emits lexicon entries, and the lexicon is
				// covered by tests, so this is a programming error.
				panic("voice: lexicon references unknown phoneme " + ph)
			}
			progress := float64(done) / float64(total)
			s.phoneme(rec, progress)
			done++
		}
		if wi < len(words)-1 {
			if pauseAfter[wi] {
				s.silence(0.18)
			} else {
				s.silence(0.06)
			}
		}
	}
	s.silence(0.1)
	out := &audio.Signal{Rate: rate, Samples: s.out}
	// Final channel shaping, as a TTS/recording chain would apply: remove
	// infrasonic residue (speech has nothing real below ~80 Hz) and bound
	// the bandwidth near 8 kHz. The sub-50 Hz cleanliness this enforces is
	// the baseline the defense compares attack recordings against.
	out.Samples = dsp.HighPassFIR(8193, 62/rate).Apply(out.Samples)
	out.Samples = dsp.LowPassFIR(511, 8200/rate).Apply(out.Samples)
	out.Normalize(0.9)
	return out, nil
}

// MustSynthesize is Synthesize for known-good vocabulary text; it panics
// on error (used by experiments over the closed vocabulary).
func MustSynthesize(text string, p Profile, rate float64) *audio.Signal {
	s, err := Synthesize(text, p, rate)
	if err != nil {
		panic(err)
	}
	return s
}

// seedFor derives a deterministic RNG seed from the text and profile.
func seedFor(text string, p Profile) int64 {
	h := fnv.New64a()
	h.Write([]byte(text))
	h.Write([]byte{0})
	h.Write([]byte(p.Name))
	return int64(h.Sum64())
}

// synth is the running synthesis state.
type synth struct {
	p     Profile
	rate  float64
	rng   *rand.Rand
	out   []float64
	phase float64 // glottal phase in [0,1)

	// Source shaping filters persist across phonemes for continuity.
	tilt1, tilt2 *dsp.OnePole
}

func newSynth(p Profile, rate float64, seed int64) *synth {
	return &synth{
		p:     p,
		rate:  rate,
		rng:   rand.New(rand.NewSource(seed)),
		tilt1: dsp.NewOnePoleLP(350, rate),
		tilt2: dsp.NewOnePoleLP(2500, rate),
	}
}

func (s *synth) silence(seconds float64) {
	n := int(seconds * s.rate * s.p.RateScale)
	s.out = append(s.out, make([]float64, n)...)
}

// f0At returns the instantaneous pitch given utterance progress (0..1):
// a gentle declination plus 5 Hz vibrato.
func (s *synth) f0At(progress, t float64) float64 {
	decl := 1.12 - 0.22*progress
	vib := 1 + 0.015*math.Sin(2*math.Pi*5*t)
	return s.p.F0 * decl * vib
}

// glottalSample advances the glottal source by one sample at pitch f0 and
// returns the excitation value: a unit impulse at each closure, low-pass
// shaped by the persistent tilt filters into a natural -12 dB/oct pulse.
func (s *synth) glottalSample(f0 float64) float64 {
	s.phase += f0 / s.rate
	var imp float64
	if s.phase >= 1 {
		s.phase -= 1
		imp = 1
	}
	v := s.tilt1.ProcessSample(s.tilt2.ProcessSample(imp * 40))
	if s.p.Breathiness > 0 {
		v += s.rng.NormFloat64() * s.p.Breathiness * 0.2
	}
	return v
}

// phoneme renders one phoneme into the output buffer.
func (s *synth) phoneme(ph Phoneme, progress float64) {
	switch ph.Manner {
	case MannerStop:
		s.stop(ph, progress)
	case MannerAffricate:
		s.affricate(ph, progress)
	default:
		s.sustained(ph, progress)
	}
}

// sustained renders vowels, diphthongs, approximants, nasals, fricatives
// and aspirates: a time-varying formant cascade over a voiced and/or
// noise source.
func (s *synth) sustained(ph Phoneme, progress float64) {
	n := int(ph.DurMS / 1000 * s.rate * s.p.RateScale)
	if n <= 0 {
		return
	}
	var res [3]*dsp.Biquad
	bw := [3]float64{90, 110, 170}
	for i := range res {
		res[i] = dsp.NewKlattResonator(ph.F[i]*s.p.FormantScale+1, bw[i], s.rate)
	}
	var noiseRes *dsp.Biquad
	if ph.NoiseAmp > 0 {
		center := (ph.NoiseLo + ph.NoiseHi) / 2
		width := ph.NoiseHi - ph.NoiseLo
		noiseRes = dsp.NewKlattResonator(center, width, s.rate)
	}
	buf := make([]float64, n)
	const updateEvery = 48
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n)
		if ph.Voiced && i%updateEvery == 0 {
			for j := range res {
				f := ph.F[j] + (ph.FEnd[j]-ph.F[j])*frac
				res[j].SetKlattResonator(f*s.p.FormantScale+1, bw[j], s.rate)
			}
		}
		var v float64
		if ph.Voiced {
			t := float64(len(s.out)+i) / s.rate
			src := s.glottalSample(s.f0At(progress, t))
			v = res[2].ProcessSample(res[1].ProcessSample(res[0].ProcessSample(src)))
		}
		if noiseRes != nil {
			v += noiseRes.ProcessSample(s.rng.NormFloat64()) * ph.NoiseAmp
		}
		buf[i] = v * ph.Amp * ramp(i, n, s.rate)
	}
	dsp.Differentiate(buf) // lip radiation: +6 dB/oct
	s.out = append(s.out, buf...)
}

// stop renders closure + burst (+ short aspiration for unvoiced stops).
func (s *synth) stop(ph Phoneme, progress float64) {
	closureMS, burstMS, aspMS := 45.0, 12.0, 25.0
	if ph.Voiced {
		closureMS, aspMS = 30, 8
	}
	// Closure: silence, or a weak low-frequency voice bar when voiced.
	nc := int(closureMS / 1000 * s.rate * s.p.RateScale)
	closure := make([]float64, nc)
	if ph.Voiced {
		bar := dsp.NewKlattResonator(150, 100, s.rate)
		for i := range closure {
			t := float64(len(s.out)+i) / s.rate
			closure[i] = bar.ProcessSample(s.glottalSample(s.f0At(progress, t))) * 0.12
		}
	}
	s.out = append(s.out, closure...)

	// Burst: a sharp noise transient centred at the burst frequency.
	nb := int(burstMS / 1000 * s.rate)
	burst := make([]float64, nb)
	bres := dsp.NewKlattResonator(ph.BurstHz*s.p.FormantScale, 900, s.rate)
	for i := range burst {
		decay := math.Exp(-4 * float64(i) / float64(nb))
		burst[i] = bres.ProcessSample(s.rng.NormFloat64()) * ph.NoiseAmp * 1.6 * decay
	}
	dsp.Differentiate(burst) // keep noise out of the infrasonic band
	s.out = append(s.out, burst...)

	// Aspiration tail.
	na := int(aspMS / 1000 * s.rate)
	asp := make([]float64, na)
	ares := dsp.NewKlattResonator((ph.NoiseLo+ph.NoiseHi)/2, ph.NoiseHi-ph.NoiseLo, s.rate)
	for i := range asp {
		decay := 1 - float64(i)/float64(na)
		asp[i] = ares.ProcessSample(s.rng.NormFloat64()) * ph.NoiseAmp * 0.4 * decay
	}
	dsp.Differentiate(asp)
	s.out = append(s.out, asp...)
}

// affricate is a stop closure with a fricative release.
func (s *synth) affricate(ph Phoneme, progress float64) {
	stopPart := ph
	stopPart.DurMS = 60
	s.stop(stopPart, progress)
	fric := ph
	fric.Manner = MannerFricative
	fric.Voiced = false
	fric.DurMS = ph.DurMS - 60
	if fric.DurMS < 40 {
		fric.DurMS = 40
	}
	s.sustained(fric, progress)
}

// ramp applies 5 ms attack/release to avoid clicks at phoneme boundaries.
func ramp(i, n int, rate float64) float64 {
	edge := int(0.005 * rate)
	if edge < 1 {
		return 1
	}
	switch {
	case i < edge:
		return float64(i) / float64(edge)
	case i >= n-edge:
		return float64(n-1-i) / float64(edge)
	default:
		return 1
	}
}
