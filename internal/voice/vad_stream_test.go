package voice

import (
	"math"
	"testing"

	"inaudible/internal/audio"
)

// burstSignal alternates loud tone bursts with silence: 0.3 s on,
// 0.3 s off, for cycles repetitions at the given rate.
func burstSignal(rate float64, cycles int) *audio.Signal {
	seg := int(0.3 * rate)
	s := audio.New(rate, float64(2*seg*cycles)/rate)
	for c := 0; c < cycles; c++ {
		off := 2 * c * seg
		for i := 0; i < seg; i++ {
			t := float64(i) / rate
			s.Samples[off+i] = 0.5 * math.Sin(2*math.Pi*440*t)
		}
	}
	return s
}

func TestStreamVADTracksBatch(t *testing.T) {
	const rate = 48000.0
	sig := burstSignal(rate, 4)
	batch := ActiveFraction(sig, 30)
	v := NewStreamVAD(rate, 30)
	for off := 0; off < sig.Len(); off += 960 {
		end := off + 960
		if end > sig.Len() {
			end = sig.Len()
		}
		v.Push(sig.Samples[off:end])
	}
	online := v.ActiveFraction()
	// The streaming peak reference converges after the first burst, so
	// the fractions agree loosely, not exactly.
	if math.Abs(online-batch) > 0.15 {
		t.Fatalf("online active fraction %.3f far from batch %.3f", online, batch)
	}
	if online < 0.3 || online > 0.8 {
		t.Fatalf("online active fraction %.3f outside plausible range for 50%% duty", online)
	}
}

func TestStreamVADStateTransitions(t *testing.T) {
	const rate = 48000.0
	v := NewStreamVAD(rate, 30)
	loud := audio.Tone(rate, 440, 0.5, 0.2).Samples
	quiet := audio.New(rate, 0.2).Samples
	v.Push(loud)
	if !v.Active() {
		t.Fatalf("not active during loud burst")
	}
	v.Push(quiet)
	if v.Active() {
		t.Fatalf("still active after 200 ms of silence")
	}
	v.Push(loud)
	if !v.Active() {
		t.Fatalf("did not re-activate on the second burst")
	}
	if v.Frames() != 30 {
		t.Fatalf("frames = %d, want 30 (600 ms of 20 ms frames)", v.Frames())
	}
	v.Reset()
	if v.Active() || v.Frames() != 0 || v.ActiveFraction() != 0 {
		t.Fatalf("Reset left state behind")
	}
}

func TestStreamVADSilenceOnly(t *testing.T) {
	v := NewStreamVAD(48000, 30)
	v.Push(audio.New(48000, 0.5).Samples)
	if v.Active() || v.ActiveFraction() != 0 {
		t.Fatalf("pure silence judged active")
	}
}
