package voice

import (
	"math"
	"strings"
	"testing"

	"inaudible/internal/dsp"
)

func TestLexiconPhonemesExist(t *testing.T) {
	// Every phoneme referenced by the lexicon must be in the table.
	for word, phs := range lexicon {
		for _, p := range phs {
			if _, ok := LookupPhoneme(p); !ok {
				t.Errorf("word %q references unknown phoneme %q", word, p)
			}
		}
	}
}

func TestVocabularyTranscribes(t *testing.T) {
	for _, c := range Vocabulary() {
		words, pauses, err := Transcribe(c.Text)
		if err != nil {
			t.Errorf("command %q: %v", c.ID, err)
			continue
		}
		if len(words) != len(c.Words()) {
			t.Errorf("command %q: %d transcribed vs %d words", c.ID, len(words), len(c.Words()))
		}
		if len(pauses) != len(words) {
			t.Errorf("command %q: pause slice mismatch", c.ID)
		}
		if !strings.Contains(c.Text, c.Wake) {
			t.Errorf("command %q: wake %q not a prefix of text", c.ID, c.Wake)
		}
	}
}

func TestTranscribeErrors(t *testing.T) {
	if _, _, err := Transcribe("frobnicate the widget"); err == nil {
		t.Error("unknown word should fail")
	}
	if _, _, err := Transcribe(""); err == nil {
		t.Error("empty command should fail")
	}
	if _, _, err := Transcribe(",,,"); err == nil {
		t.Error("punctuation-only command should fail")
	}
}

func TestTranscribeMarksPauses(t *testing.T) {
	_, pauses, err := Transcribe("alexa, play music")
	if err != nil {
		t.Fatal(err)
	}
	if !pauses[0] {
		t.Error("comma after alexa should mark a pause")
	}
	if pauses[1] || pauses[2] {
		t.Error("no pauses expected elsewhere")
	}
}

func TestSynthesizeBasicShape(t *testing.T) {
	s := MustSynthesize("ok google, take a picture", DefaultVoice(), 48000)
	if s.Rate != 48000 {
		t.Fatalf("rate %v", s.Rate)
	}
	if d := s.Duration(); d < 1.0 || d > 5.0 {
		t.Fatalf("duration %v s out of the plausible range", d)
	}
	if math.Abs(s.Peak()-0.9) > 1e-9 {
		t.Fatalf("peak %v, want 0.9", s.Peak())
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := MustSynthesize("alexa, play music", DefaultVoice(), 48000)
	b := MustSynthesize("alexa, play music", DefaultVoice(), 48000)
	if a.Len() != b.Len() {
		t.Fatal("non-deterministic length")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestSynthesizeVoicesDiffer(t *testing.T) {
	a := MustSynthesize("alexa, play music", DefaultVoice(), 48000)
	b := MustSynthesize("alexa, play music", Profiles()[2], 48000) // female-1
	if a.Len() == b.Len() {
		same := true
		for i := range a.Samples {
			if a.Samples[i] != b.Samples[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different voices produced identical audio")
		}
	}
}

func TestSynthesizeUnknownWordFails(t *testing.T) {
	if _, err := Synthesize("ok google, defenestrate", DefaultVoice(), 48000); err == nil {
		t.Fatal("expected error")
	}
}

func TestSpeechEnergyConcentratedBelow8kHz(t *testing.T) {
	// The attack pipeline low-pass filters at 8 kHz "while still
	// preserving enough data" — our synthetic speech must satisfy that.
	s := MustSynthesize("alexa, add milk to my shopping list", DefaultVoice(), 48000)
	psd := dsp.Welch(s.Samples, 4096)
	below := dsp.BandPower(psd, 48000, 4096, 0, 8000)
	above := dsp.BandPower(psd, 48000, 4096, 8000, 24000)
	if below < 20*above {
		t.Fatalf("energy above 8 kHz too high: below=%v above=%v", below, above)
	}
}

func TestSpeechHasNoSub50HzEnergy(t *testing.T) {
	// Legitimate speech must be clean below 50 Hz — the defense's core
	// assumption. F0 >= ~98 Hz for all profiles.
	for _, p := range Profiles() {
		s := MustSynthesize("ok google, take a picture", p, 48000)
		psd := dsp.Welch(s.Samples, 8192)
		low := dsp.BandPower(psd, 48000, 8192, 5, 50)
		total := dsp.BandPower(psd, 48000, 8192, 5, 24000)
		if low/total > 1e-3 {
			t.Errorf("profile %s: sub-50 Hz fraction %v too high", p.Name, low/total)
		}
	}
}

func TestSpeechPitchVisible(t *testing.T) {
	// A sustained vowel region should show F0 near the profile's pitch.
	s := MustSynthesize("alexa, what time is it", DefaultVoice(), 48000)
	psd := dsp.Welch(s.Samples, 8192)
	// Find the strongest bin between 60 and 300 Hz.
	best, bestF := 0.0, 0.0
	for k := range psd {
		f := dsp.BinFrequency(k, 8192, 48000)
		if f < 60 || f > 300 {
			continue
		}
		if psd[k] > best {
			best, bestF = psd[k], f
		}
	}
	// Lip radiation (+6 dB/oct) can make the 2nd harmonic dominate, so
	// accept F0 or 2*F0 for the ~118 Hz default voice.
	if bestF < 85 || bestF > 280 {
		t.Fatalf("dominant pitch-band frequency %v Hz, want ~118 or ~236", bestF)
	}
}

func TestSynthesizedCommandsDistinct(t *testing.T) {
	// Different commands must differ grossly in duration or energy
	// envelope — sanity for ASR templates.
	a := MustSynthesize("alexa, play music", DefaultVoice(), 48000)
	b := MustSynthesize("ok google, turn on airplane mode", DefaultVoice(), 48000)
	if math.Abs(a.Duration()-b.Duration()) < 0.2 {
		t.Fatalf("durations suspiciously close: %v vs %v", a.Duration(), b.Duration())
	}
}

func TestDetectActivityOnSpeech(t *testing.T) {
	s := MustSynthesize("ok google, take a picture", DefaultVoice(), 48000)
	segs := DetectActivity(s, 35)
	if len(segs) == 0 {
		t.Fatal("no activity detected in speech")
	}
	frac := ActiveFraction(s, 35)
	if frac < 0.3 || frac > 0.99 {
		t.Fatalf("active fraction %v implausible", frac)
	}
	// Leading silence must be skipped.
	if segs[0].Start < 0.02 {
		t.Errorf("first segment starts at %v, leading silence missed", segs[0].Start)
	}
}

func TestDetectActivityOnSilence(t *testing.T) {
	sil := MustSynthesize("a", DefaultVoice(), 48000) // has some content
	sil.Gain(0)
	if segs := DetectActivity(sil, 30); segs != nil {
		t.Fatalf("silence produced segments: %v", segs)
	}
	if ActiveFraction(sil, 30) != 0 {
		t.Fatal("silence active fraction should be 0")
	}
}

func TestTrimSilence(t *testing.T) {
	s := MustSynthesize("alexa, what time is it", DefaultVoice(), 48000)
	trimmed := TrimSilence(s, 35)
	if trimmed.Duration() >= s.Duration() {
		t.Fatalf("trim did not shorten: %v >= %v", trimmed.Duration(), s.Duration())
	}
	if trimmed.Duration() < 0.5 {
		t.Fatalf("over-trimmed to %v s", trimmed.Duration())
	}
	// Trimming silence returns the input unchanged.
	z := s.Clone().Gain(0)
	if TrimSilence(z, 30) != z {
		t.Fatal("silent input should be returned as-is")
	}
}

func TestFindCommand(t *testing.T) {
	c, ok := FindCommand("photo")
	if !ok || c.ID != "photo" {
		t.Fatal("FindCommand photo")
	}
	if _, ok := FindCommand("nope"); ok {
		t.Fatal("unexpected command")
	}
}

func TestPhonemesList(t *testing.T) {
	ps := Phonemes()
	if len(ps) < 30 {
		t.Fatalf("only %d phonemes", len(ps))
	}
}

func TestSegmentDuration(t *testing.T) {
	if (Segment{Start: 1, End: 2.5}).Duration() != 1.5 {
		t.Fatal("Duration")
	}
}
