// Package voice synthesises the spoken commands used throughout the
// experiments with a classic cascade formant (source-filter) synthesiser:
// a glottal pulse source with pitch declination and vibrato, three Klatt
// formant resonators, shaped noise for fricatives and closure+burst
// models for stops. It replaces the text-to-speech application the paper
// used to produce "OK Google ..." and "Alexa ..." commands — deterministic
// output for a given (text, voice) pair, with the spectral properties the
// pipeline cares about: an F0 of 90-220 Hz (nothing below 50 Hz), formant
// structure, and 8 kHz-bounded energy.
package voice

// Manner classifies how a phoneme is articulated, which selects the
// synthesis strategy.
type Manner int

// Manner values.
const (
	MannerVowel Manner = iota
	MannerDiphthong
	MannerApproximant
	MannerNasal
	MannerFricative
	MannerStop
	MannerAffricate
	MannerAspirate
)

// Phoneme is a synthesis recipe for one speech sound (ARPABET-ish names).
type Phoneme struct {
	Name   string
	Manner Manner
	// F and F2 are formant targets (F1,F2,F3 in Hz) at the start and end
	// of the phoneme; monophthongs keep both equal, diphthongs glide.
	F, FEnd [3]float64
	// Voiced mixes in the glottal source (fricatives/stops may be voiced).
	Voiced bool
	// NoiseLo and NoiseHi bound the frication/burst noise band in Hz.
	NoiseLo, NoiseHi float64
	// NoiseAmp scales the noise source relative to full voicing.
	NoiseAmp float64
	// Amp scales the phoneme's overall amplitude.
	Amp float64
	// DurMS is the nominal duration in milliseconds.
	DurMS float64
	// BurstHz centres the release burst (stops/affricates).
	BurstHz float64
}

// vowel builds a monophthong recipe.
func vowel(name string, f1, f2, f3, durMS float64) Phoneme {
	return Phoneme{
		Name: name, Manner: MannerVowel,
		F: [3]float64{f1, f2, f3}, FEnd: [3]float64{f1, f2, f3},
		Voiced: true, Amp: 1, DurMS: durMS,
	}
}

// diphthong builds a two-target gliding vowel.
func diphthong(name string, a, b [3]float64, durMS float64) Phoneme {
	return Phoneme{
		Name: name, Manner: MannerDiphthong,
		F: a, FEnd: b, Voiced: true, Amp: 1, DurMS: durMS,
	}
}

// phonemeTable is the complete inventory used by the lexicon. Formant
// values follow standard (Peterson–Barney style) male averages.
var phonemeTable = map[string]Phoneme{
	// Monophthong vowels.
	"iy": vowel("iy", 270, 2290, 3010, 130),
	"ih": vowel("ih", 390, 1990, 2550, 110),
	"eh": vowel("eh", 530, 1840, 2480, 120),
	"ae": vowel("ae", 660, 1720, 2410, 150),
	"aa": vowel("aa", 730, 1090, 2440, 150),
	"ao": vowel("ao", 570, 840, 2410, 140),
	"uh": vowel("uh", 440, 1020, 2240, 100),
	"uw": vowel("uw", 300, 870, 2240, 130),
	"ah": vowel("ah", 640, 1190, 2390, 110),
	"er": vowel("er", 490, 1350, 1690, 130),
	"ax": vowel("ax", 500, 1500, 2500, 80),

	// Diphthongs.
	"ay": diphthong("ay", [3]float64{730, 1090, 2440}, [3]float64{390, 1990, 2550}, 180),
	"ey": diphthong("ey", [3]float64{530, 1840, 2480}, [3]float64{330, 2200, 2800}, 160),
	"ow": diphthong("ow", [3]float64{570, 840, 2410}, [3]float64{330, 870, 2240}, 160),
	"aw": diphthong("aw", [3]float64{730, 1090, 2440}, [3]float64{430, 1020, 2240}, 180),
	"oy": diphthong("oy", [3]float64{570, 840, 2410}, [3]float64{390, 1990, 2550}, 190),

	// Approximants and glides.
	"l": {Name: "l", Manner: MannerApproximant, F: [3]float64{360, 1300, 2700},
		FEnd: [3]float64{360, 1300, 2700}, Voiced: true, Amp: 0.7, DurMS: 70},
	"r": {Name: "r", Manner: MannerApproximant, F: [3]float64{310, 1060, 1380},
		FEnd: [3]float64{310, 1060, 1380}, Voiced: true, Amp: 0.7, DurMS: 80},
	"w": {Name: "w", Manner: MannerApproximant, F: [3]float64{290, 610, 2150},
		FEnd: [3]float64{400, 900, 2300}, Voiced: true, Amp: 0.65, DurMS: 70},
	"y": {Name: "y", Manner: MannerApproximant, F: [3]float64{270, 2290, 3010},
		FEnd: [3]float64{350, 2100, 2900}, Voiced: true, Amp: 0.65, DurMS: 60},

	// Nasals: lower amplitude murmur with nasal formants.
	"m": {Name: "m", Manner: MannerNasal, F: [3]float64{280, 900, 2200},
		FEnd: [3]float64{280, 900, 2200}, Voiced: true, Amp: 0.5, DurMS: 80},
	"n": {Name: "n", Manner: MannerNasal, F: [3]float64{280, 1700, 2600},
		FEnd: [3]float64{280, 1700, 2600}, Voiced: true, Amp: 0.5, DurMS: 75},
	"ng": {Name: "ng", Manner: MannerNasal, F: [3]float64{280, 2300, 2750},
		FEnd: [3]float64{280, 2300, 2750}, Voiced: true, Amp: 0.5, DurMS: 85},

	// Fricatives.
	"s":  {Name: "s", Manner: MannerFricative, NoiseLo: 4500, NoiseHi: 8500, NoiseAmp: 0.45, Amp: 1, DurMS: 110},
	"sh": {Name: "sh", Manner: MannerFricative, NoiseLo: 2000, NoiseHi: 6500, NoiseAmp: 0.5, Amp: 1, DurMS: 115},
	"f":  {Name: "f", Manner: MannerFricative, NoiseLo: 1500, NoiseHi: 8000, NoiseAmp: 0.25, Amp: 1, DurMS: 100},
	"th": {Name: "th", Manner: MannerFricative, NoiseLo: 1400, NoiseHi: 8000, NoiseAmp: 0.2, Amp: 1, DurMS: 95},
	"z": {Name: "z", Manner: MannerFricative, NoiseLo: 4500, NoiseHi: 8500, NoiseAmp: 0.3,
		Voiced: true, F: [3]float64{300, 1600, 2500}, FEnd: [3]float64{300, 1600, 2500}, Amp: 0.8, DurMS: 95},
	"v": {Name: "v", Manner: MannerFricative, NoiseLo: 1500, NoiseHi: 7000, NoiseAmp: 0.15,
		Voiced: true, F: [3]float64{280, 1400, 2400}, FEnd: [3]float64{280, 1400, 2400}, Amp: 0.7, DurMS: 75},
	"dh": {Name: "dh", Manner: MannerFricative, NoiseLo: 1400, NoiseHi: 7000, NoiseAmp: 0.12,
		Voiced: true, F: [3]float64{300, 1500, 2500}, FEnd: [3]float64{300, 1500, 2500}, Amp: 0.65, DurMS: 60},
	"zh": {Name: "zh", Manner: MannerFricative, NoiseLo: 2000, NoiseHi: 6500, NoiseAmp: 0.3,
		Voiced: true, F: [3]float64{300, 1700, 2500}, FEnd: [3]float64{300, 1700, 2500}, Amp: 0.75, DurMS: 100},

	// Aspirate.
	"hh": {Name: "hh", Manner: MannerAspirate, NoiseLo: 400, NoiseHi: 4000, NoiseAmp: 0.18, Amp: 1, DurMS: 70},

	// Unvoiced stops: closure + burst + aspiration.
	"p": {Name: "p", Manner: MannerStop, BurstHz: 900, NoiseLo: 500, NoiseHi: 1800, NoiseAmp: 0.5, Amp: 1, DurMS: 90},
	"t": {Name: "t", Manner: MannerStop, BurstHz: 4200, NoiseLo: 3000, NoiseHi: 7000, NoiseAmp: 0.55, Amp: 1, DurMS: 90},
	"k": {Name: "k", Manner: MannerStop, BurstHz: 2200, NoiseLo: 1500, NoiseHi: 3500, NoiseAmp: 0.55, Amp: 1, DurMS: 95},

	// Voiced stops: shorter closure with a voice bar.
	"b": {Name: "b", Manner: MannerStop, Voiced: true, BurstHz: 800, NoiseLo: 400, NoiseHi: 1600, NoiseAmp: 0.35, Amp: 1, DurMS: 70},
	"d": {Name: "d", Manner: MannerStop, Voiced: true, BurstHz: 3800, NoiseLo: 2500, NoiseHi: 6000, NoiseAmp: 0.4, Amp: 1, DurMS: 70},
	"g": {Name: "g", Manner: MannerStop, Voiced: true, BurstHz: 2000, NoiseLo: 1300, NoiseHi: 3200, NoiseAmp: 0.4, Amp: 1, DurMS: 75},

	// Affricates: stop closure + fricative release.
	"ch": {Name: "ch", Manner: MannerAffricate, BurstHz: 3000, NoiseLo: 2000, NoiseHi: 6500, NoiseAmp: 0.5, Amp: 1, DurMS: 130},
	"jh": {Name: "jh", Manner: MannerAffricate, Voiced: true, BurstHz: 2800, NoiseLo: 2000, NoiseHi: 6000, NoiseAmp: 0.4, Amp: 0.9, DurMS: 115},
}

// LookupPhoneme returns the recipe for an ARPABET-style phoneme name.
func LookupPhoneme(name string) (Phoneme, bool) {
	p, ok := phonemeTable[name]
	return p, ok
}

// Phonemes returns the names of all known phonemes (order unspecified).
func Phonemes() []string {
	out := make([]string, 0, len(phonemeTable))
	for k := range phonemeTable {
		out = append(out, k)
	}
	return out
}
