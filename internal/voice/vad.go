package voice

import (
	"inaudible/internal/audio"
	"inaudible/internal/dsp"
)

// Segment is a half-open active-speech interval in seconds.
type Segment struct {
	Start, End float64
}

// Duration returns the segment length in seconds.
func (s Segment) Duration() float64 { return s.End - s.Start }

// DetectActivity runs a simple energy-based voice activity detector:
// 20 ms frames, active when frame RMS exceeds threshDB below the loudest
// frame, with hangover merging of gaps shorter than 60 ms. A typical
// threshold is 30 dB.
func DetectActivity(s *audio.Signal, threshDB float64) []Segment {
	const frameSec = 0.020
	frame := int(frameSec * s.Rate)
	if frame <= 0 || s.Len() == 0 {
		return nil
	}
	nFrames := s.Len() / frame
	if nFrames == 0 {
		return nil
	}
	rms := make([]float64, nFrames)
	var peak float64
	for f := 0; f < nFrames; f++ {
		rms[f] = dsp.RMS(s.Samples[f*frame : (f+1)*frame])
		if rms[f] > peak {
			peak = rms[f]
		}
	}
	if peak == 0 {
		return nil
	}
	thresh := peak * dsp.AmplitudeFromDB(-threshDB)
	active := make([]bool, nFrames)
	for f := range active {
		active[f] = rms[f] >= thresh
	}
	// Hangover: fill gaps up to 3 frames (60 ms).
	const maxGap = 3
	run := 0
	for f := 0; f < nFrames; f++ {
		if active[f] {
			if run > 0 && run <= maxGap {
				for g := f - run; g < f; g++ {
					active[g] = true
				}
			}
			run = 0
		} else {
			run++
		}
	}
	var segs []Segment
	inSeg := false
	var start int
	for f := 0; f < nFrames; f++ {
		switch {
		case active[f] && !inSeg:
			inSeg = true
			start = f
		case !active[f] && inSeg:
			inSeg = false
			segs = append(segs, Segment{
				Start: float64(start) * frameSec,
				End:   float64(f) * frameSec,
			})
		}
	}
	if inSeg {
		segs = append(segs, Segment{
			Start: float64(start) * frameSec,
			End:   float64(nFrames) * frameSec,
		})
	}
	return segs
}

// TrimSilence returns a view of s restricted to the span from the first
// active segment's start to the last one's end (with a small margin), or
// s unchanged if nothing is active.
func TrimSilence(s *audio.Signal, threshDB float64) *audio.Signal {
	segs := DetectActivity(s, threshDB)
	if len(segs) == 0 {
		return s
	}
	const margin = 0.03
	start := segs[0].Start - margin
	end := segs[len(segs)-1].End + margin
	return s.Slice(start, end)
}

// ActiveFraction returns the fraction of the signal judged active.
func ActiveFraction(s *audio.Signal, threshDB float64) float64 {
	if s.Duration() == 0 {
		return 0
	}
	var act float64
	for _, seg := range DetectActivity(s, threshDB) {
		act += seg.Duration()
	}
	return act / s.Duration()
}
