package voice

import (
	"math"

	"inaudible/internal/audio"
	"inaudible/internal/dsp"
)

// Segment is a half-open active-speech interval in seconds.
type Segment struct {
	Start, End float64
}

// Duration returns the segment length in seconds.
func (s Segment) Duration() float64 { return s.End - s.Start }

// DetectActivity runs a simple energy-based voice activity detector:
// 20 ms frames, active when frame RMS exceeds threshDB below the loudest
// frame, with hangover merging of gaps shorter than 60 ms. A typical
// threshold is 30 dB.
func DetectActivity(s *audio.Signal, threshDB float64) []Segment {
	const frameSec = 0.020
	frame := int(frameSec * s.Rate)
	if frame <= 0 || s.Len() == 0 {
		return nil
	}
	nFrames := s.Len() / frame
	if nFrames == 0 {
		return nil
	}
	rms := make([]float64, nFrames)
	var peak float64
	for f := 0; f < nFrames; f++ {
		rms[f] = dsp.RMS(s.Samples[f*frame : (f+1)*frame])
		if rms[f] > peak {
			peak = rms[f]
		}
	}
	if peak == 0 {
		return nil
	}
	thresh := peak * dsp.AmplitudeFromDB(-threshDB)
	active := make([]bool, nFrames)
	for f := range active {
		active[f] = rms[f] >= thresh
	}
	// Hangover: fill gaps up to 3 frames (60 ms).
	const maxGap = 3
	run := 0
	for f := 0; f < nFrames; f++ {
		if active[f] {
			if run > 0 && run <= maxGap {
				for g := f - run; g < f; g++ {
					active[g] = true
				}
			}
			run = 0
		} else {
			run++
		}
	}
	var segs []Segment
	inSeg := false
	var start int
	for f := 0; f < nFrames; f++ {
		switch {
		case active[f] && !inSeg:
			inSeg = true
			start = f
		case !active[f] && inSeg:
			inSeg = false
			segs = append(segs, Segment{
				Start: float64(start) * frameSec,
				End:   float64(f) * frameSec,
			})
		}
	}
	if inSeg {
		segs = append(segs, Segment{
			Start: float64(start) * frameSec,
			End:   float64(nFrames) * frameSec,
		})
	}
	return segs
}

// TrimSilence returns a view of s restricted to the span from the first
// active segment's start to the last one's end (with a small margin), or
// s unchanged if nothing is active.
func TrimSilence(s *audio.Signal, threshDB float64) *audio.Signal {
	segs := DetectActivity(s, threshDB)
	if len(segs) == 0 {
		return s
	}
	const margin = 0.03
	start := segs[0].Start - margin
	end := segs[len(segs)-1].End + margin
	return s.Slice(start, end)
}

// ActiveFraction returns the fraction of the signal judged active.
func ActiveFraction(s *audio.Signal, threshDB float64) float64 {
	if s.Duration() == 0 {
		return 0
	}
	var act float64
	for _, seg := range DetectActivity(s, threshDB) {
		act += seg.Duration()
	}
	return act / s.Duration()
}

// StreamVAD is the online counterpart of DetectActivity for unbounded
// sessions: the same 20 ms energy frames and 60 ms hangover, but with
// the activity threshold referenced to the loudest frame seen so far
// (a causal stand-in for the batch detector's global peak). State is a
// few scalars; Push never allocates.
type StreamVAD struct {
	frame    int     // samples per 20 ms frame
	thresh   float64 // amplitude ratio below the running peak
	peak     float64 // loudest frame RMS so far
	sumSq    float64 // energy of the partial frame
	fill     int
	frames   int
	active   int  // frames judged active (including hangover backfill)
	gap      int  // inactive run length since the last active frame
	inSpeech bool // current frame-level activity state
}

// NewStreamVAD builds an online detector at the given sample rate; a
// typical threshold is 30 dB (matching DetectActivity's convention).
func NewStreamVAD(rate, threshDB float64) *StreamVAD {
	frame := int(0.020 * rate)
	if frame <= 0 {
		frame = 1
	}
	return &StreamVAD{frame: frame, thresh: dsp.AmplitudeFromDB(-threshDB)}
}

// Push advances the detector over the next samples.
func (v *StreamVAD) Push(x []float64) {
	for _, s := range x {
		v.sumSq += s * s
		v.fill++
		if v.fill == v.frame {
			v.completeFrame()
		}
	}
}

// completeFrame classifies the finished 20 ms frame with hangover: gaps
// of up to 3 frames between active frames count as active, like the
// batch detector's backfill.
func (v *StreamVAD) completeFrame() {
	rms := math.Sqrt(v.sumSq / float64(v.frame))
	v.sumSq = 0
	v.fill = 0
	v.frames++
	if rms > v.peak {
		v.peak = rms
	}
	const maxGap = 3
	if v.peak > 0 && rms >= v.peak*v.thresh {
		v.active++
		if v.gap > 0 && v.gap <= maxGap {
			v.active += v.gap // hangover: the short gap counts as speech
		}
		v.gap = 0
		v.inSpeech = true
	} else {
		v.gap++
		v.inSpeech = false
	}
}

// Active reports whether the most recent completed frame was speech.
func (v *StreamVAD) Active() bool { return v.inSpeech }

// Frames returns the number of completed 20 ms frames.
func (v *StreamVAD) Frames() int { return v.frames }

// ActiveFraction returns the fraction of completed frames judged active
// (hangover-merged), the online analogue of the batch ActiveFraction.
func (v *StreamVAD) ActiveFraction() float64 {
	if v.frames == 0 {
		return 0
	}
	return float64(v.active) / float64(v.frames)
}

// Reset clears all state for a new session.
func (v *StreamVAD) Reset() {
	v.peak, v.sumSq = 0, 0
	v.fill, v.frames, v.active, v.gap = 0, 0, 0, 0
	v.inSpeech = false
}
