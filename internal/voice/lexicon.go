package voice

import (
	"fmt"
	"strings"
)

// lexicon maps every word used by the command vocabulary to its phoneme
// sequence (ARPABET-style, no stress marks).
var lexicon = map[string][]string{
	"ok":       {"ow", "k", "ey"},
	"okay":     {"ow", "k", "ey"},
	"google":   {"g", "uw", "g", "ah", "l"},
	"take":     {"t", "ey", "k"},
	"a":        {"ah"},
	"picture":  {"p", "ih", "k", "ch", "er"},
	"turn":     {"t", "er", "n"},
	"on":       {"aa", "n"},
	"off":      {"ao", "f"},
	"airplane": {"eh", "r", "p", "l", "ey", "n"},
	"mode":     {"m", "ow", "d"},
	"alexa":    {"ah", "l", "eh", "k", "s", "ah"},
	"add":      {"ae", "d"},
	"milk":     {"m", "ih", "l", "k"},
	"to":       {"t", "uw"},
	"my":       {"m", "ay"},
	"shopping": {"sh", "aa", "p", "ih", "ng"},
	"list":     {"l", "ih", "s", "t"},
	"what":     {"w", "ah", "t"},
	"time":     {"t", "ay", "m"},
	"is":       {"ih", "z"},
	"it":       {"ih", "t"},
	"call":     {"k", "ao", "l"},
	"mom":      {"m", "aa", "m"},
	"hey":      {"hh", "ey"},
	"siri":     {"s", "ih", "r", "iy"},
	"open":     {"ow", "p", "ah", "n"},
	"the":      {"dh", "ah"},
	"door":     {"d", "ao", "r"},
	"play":     {"p", "l", "ey"},
	"music":    {"m", "y", "uw", "z", "ih", "k"},
	"stop":     {"s", "t", "aa", "p"},
	"set":      {"s", "eh", "t"},
	"an":       {"ae", "n"},
	"alarm":    {"ah", "l", "aa", "r", "m"},
	"unlock":   {"ah", "n", "l", "aa", "k"},
	"front":    {"f", "r", "ah", "n", "t"},
	"lights":   {"l", "ay", "t", "s"},
	"volume":   {"v", "aa", "l", "y", "uw", "m"},
	"up":       {"ah", "p"},
	"down":     {"d", "aw", "n"},
	"weather":  {"w", "eh", "dh", "er"},
}

// LookupWord returns the phoneme sequence for a lexicon word.
func LookupWord(word string) ([]string, bool) {
	p, ok := lexicon[strings.ToLower(word)]
	return p, ok
}

// Transcribe converts a command text into a per-word phoneme sequence. A
// comma in the text marks a prosodic pause. Unknown words are an error —
// the vocabulary is closed by design so experiments cannot silently
// synthesise garbage.
func Transcribe(text string) ([][]string, []bool, error) {
	var words [][]string
	var pauseAfter []bool
	fields := strings.Fields(strings.ToLower(text))
	for _, f := range fields {
		pause := false
		for strings.HasSuffix(f, ",") || strings.HasSuffix(f, ".") {
			pause = true
			f = f[:len(f)-1]
		}
		if f == "" {
			continue
		}
		ph, ok := lexicon[f]
		if !ok {
			return nil, nil, fmt.Errorf("voice: word %q not in lexicon", f)
		}
		words = append(words, ph)
		pauseAfter = append(pauseAfter, pause)
	}
	if len(words) == 0 {
		return nil, nil, fmt.Errorf("voice: empty command %q", text)
	}
	return words, pauseAfter, nil
}

// Command is one entry of the closed command vocabulary, the equivalent
// of the voice assistant's supported phrases in the paper's experiments.
type Command struct {
	ID   string // short identifier used in reports
	Text string // the spoken form
	Wake string // wake word ("ok google", "alexa", "hey siri")
}

// Vocabulary returns the command set used across all experiments. The
// first two entries are the paper's literal attack commands.
func Vocabulary() []Command {
	return []Command{
		{ID: "photo", Text: "ok google, take a picture", Wake: "ok google"},
		{ID: "airplane", Text: "ok google, turn on airplane mode", Wake: "ok google"},
		{ID: "milk", Text: "alexa, add milk to my shopping list", Wake: "alexa"},
		{ID: "time", Text: "alexa, what time is it", Wake: "alexa"},
		{ID: "callmom", Text: "ok google, call mom", Wake: "ok google"},
		{ID: "music", Text: "alexa, play music", Wake: "alexa"},
		{ID: "alarm", Text: "hey siri, set an alarm", Wake: "hey siri"},
		{ID: "door", Text: "alexa, unlock the front door", Wake: "alexa"},
	}
}

// FindCommand returns the vocabulary entry with the given ID.
func FindCommand(id string) (Command, bool) {
	for _, c := range Vocabulary() {
		if c.ID == id {
			return c, true
		}
	}
	return Command{}, false
}

// Words returns the lowercase word sequence of the command text,
// punctuation stripped.
func (c Command) Words() []string {
	var out []string
	for _, f := range strings.Fields(strings.ToLower(c.Text)) {
		f = strings.TrimRight(f, ",.")
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}
