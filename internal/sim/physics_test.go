package sim

import (
	"math"
	"math/rand"
	"testing"

	"inaudible/internal/acoustics"
	"inaudible/internal/attack"
	"inaudible/internal/audio"
	"inaudible/internal/mic"
	"inaudible/internal/speaker"
)

// amDrive builds a representative ultrasonic drive: an AM carrier at
// 30 kHz with an 800 Hz modulator, faded, at 192 kHz.
func amDrive(seconds float64) *audio.Signal {
	const rate = 192000.0
	s := audio.New(rate, seconds)
	wc := 2 * math.Pi * 30000 / rate
	wm := 2 * math.Pi * 800 / rate
	for i := range s.Samples {
		s.Samples[i] = (1 + 0.8*math.Sin(wm*float64(i))) * math.Cos(wc*float64(i))
	}
	attack.Fade(s, 0.05)
	s.Normalize(1)
	return s
}

// TestSpeakerChainExactMatchesEmit pins the exact-mode contract: the
// chain realization of the speaker is bit-identical to sp.Emit.
func TestSpeakerChainExactMatchesEmit(t *testing.T) {
	drive := amDrive(0.25)
	sp := speaker.FostexTweeter()
	want := sp.Emit(drive, 18.7)
	c := Compile(Options{}, SpeakerStages(sp, drive.RMS(), 18.7, drive.Rate, Exact, Options{})...)
	got := RunSignal(c, drive, drive.Rate, Options{})
	if got.Len() != want.Len() {
		t.Fatalf("length %d want %d", got.Len(), want.Len())
	}
	for i := range got.Samples {
		if got.Samples[i] != want.Samples[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, got.Samples[i], want.Samples[i])
		}
	}
}

// TestSpeakerChainStreamingParity pins the streaming tolerance: the
// FIR-approximated speaker chain tracks Emit closely for in-band drives.
func TestSpeakerChainStreamingParity(t *testing.T) {
	drive := amDrive(0.25)
	sp := speaker.FostexTweeter()
	want := sp.Emit(drive, 18.7)
	c := Compile(Options{}, SpeakerStages(sp, drive.RMS(), 18.7, drive.Rate, Streaming, Options{})...)
	got := RunSignal(c, drive, drive.Rate, Options{})
	if e := relErr(got.Samples, want.Samples); e > 0.02 {
		t.Fatalf("streaming speaker chain rel err %v > 0.02", e)
	}
}

// TestPathChainStreamingParity pins the propagation filter tolerance
// against the exact frequency-domain operator (no delay, as Deliver).
func TestPathChainStreamingParity(t *testing.T) {
	field := speaker.FostexTweeter().Emit(amDrive(0.25), 18.7)
	p := acoustics.Path{Distance: 5, Air: acoustics.DefaultAir()}
	want := p.Propagate(field)
	c := Compile(Options{}, PathStages(p, field.Rate, Streaming, Options{})...)
	got := RunSignal(c, field, field.Rate, Options{})
	if e := relErr(got.Samples, want.Samples); e > 0.02 {
		t.Fatalf("streaming path chain rel err %v > 0.02", e)
	}
}

// TestMicChainStreamingParity pins the capture-side tolerance: with a
// shared noise seed the streaming mic chain tracks Record closely (the
// only approximation is the body filter FIR; LPF, resampler, DC block,
// quantiser and the noise sequence are bit-identical twins).
func TestMicChainStreamingParity(t *testing.T) {
	field := speaker.FostexTweeter().Emit(amDrive(0.25), 18.7)
	at := acoustics.Path{Distance: 3, Air: acoustics.DefaultAir()}.Propagate(field)
	d := mic.AndroidPhone()
	want := d.Record(at, rand.New(rand.NewSource(42)))
	c := Compile(Options{}, MicStages(d, rand.New(rand.NewSource(42)), at.Rate, Streaming, Options{})...)
	got := RunSignal(c, at, d.ADCRate, Options{})
	if got.Len() != want.Len() {
		t.Fatalf("length %d want %d", got.Len(), want.Len())
	}
	if e := relErr(got.Samples, want.Samples); e > 0.05 {
		t.Fatalf("streaming mic chain rel err %v > 0.05", e)
	}
}

// TestMicChainStreamingReferenceTight pins a much tighter tolerance for
// the reference mic, which has no body filter: every remaining stage is
// a bit-identical (or 1e-12 segmentation-rounded) twin of Record.
func TestMicChainStreamingReferenceTight(t *testing.T) {
	field := speaker.FostexTweeter().Emit(amDrive(0.25), 18.7)
	at := acoustics.Path{Distance: 3, Air: acoustics.DefaultAir()}.Propagate(field)
	d := mic.ReferenceMic()
	want := d.Record(at, rand.New(rand.NewSource(7)))
	c := Compile(Options{}, MicStages(d, rand.New(rand.NewSource(7)), at.Rate, Streaming, Options{})...)
	got := RunSignal(c, at, d.ADCRate, Options{})
	if e := relErr(got.Samples, want.Samples); e > 1e-6 {
		t.Fatalf("reference mic chain rel err %v > 1e-6", e)
	}
}

// TestRoomChainParity is the satellite requirement: the parallel
// image-source room stage matches PropagateInRoom within tolerance.
func TestRoomChainParity(t *testing.T) {
	// Voice-band content so the comparison exercises the reflections, not
	// ultra-fine ultrasonic phase alignment.
	sig := audio.New(48000, 0.4)
	for i := range sig.Samples {
		tt := float64(i) / 48000
		sig.Samples[i] = math.Sin(2*math.Pi*440*tt) + 0.5*math.Sin(2*math.Pi*1320*tt)
	}
	attack.Fade(sig, 0.05)
	room := acoustics.MeetingRoom()
	from := acoustics.Position{X: 1, Y: 2, Z: 1.2}
	to := acoustics.Position{X: 4, Y: 2, Z: 0.8}
	want := room.PropagateInRoom(sig, from, to)
	c := Compile(Options{}, RoomStages(room, from, to, sig.Rate, Streaming, Options{})...)
	got := RunSignal(c, sig, sig.Rate, Options{})
	if got.Len() != want.Len() {
		t.Fatalf("length %d want %d", got.Len(), want.Len())
	}
	if e := relErr(got.Samples, want.Samples); e > 0.05 {
		t.Fatalf("room chain rel err %v > 0.05", e)
	}
}

// TestRoomChainExactMatchesBatch pins the exact-mode room realization.
func TestRoomChainExactMatchesBatch(t *testing.T) {
	sig := amDrive(0.1)
	room := acoustics.MeetingRoom()
	from := acoustics.Position{X: 1, Y: 2, Z: 1.2}
	to := acoustics.Position{X: 4, Y: 2, Z: 0.8}
	want := room.PropagateInRoom(sig, from, to)
	c := Compile(Options{}, RoomStages(room, from, to, sig.Rate, Exact, Options{})...)
	got := RunSignal(c, sig, sig.Rate, Options{})
	for i := range got.Samples {
		if got.Samples[i] != want.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

// TestArrayFieldSourceMatchesFieldAt pins the array stage against the
// plan-cached batch FieldAt: exact-mode branches run the identical
// per-element Emit+Propagate operators, so the only difference is the
// summation route (time-domain per element vs one shared inverse FFT).
func TestArrayFieldSourceMatchesFieldAt(t *testing.T) {
	arr := speaker.NewGridArray(4, speaker.UltrasonicElement, 0.05)
	drive := amDrive(0.1)
	for i := range arr.Elements {
		arr.Elements[i].Drive = drive
		arr.Elements[i].PowerW = 2
	}
	target := acoustics.Position{X: 3, Y: 0.4, Z: 0.1}
	air := acoustics.DefaultAir()
	want := arr.FieldAt(target, air, true)
	src := ArrayFieldSource(arr, target, air, true, Exact, Options{})
	if src == nil {
		t.Fatal("no driven elements")
	}
	buf := make([]float64, 4096)
	var got []float64
	for {
		n := src.Read(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != want.Len() {
		t.Fatalf("length %d want %d", len(got), want.Len())
	}
	if e := relErr(got, want.Samples); e > 1e-9 {
		t.Fatalf("array stage rel err %v vs FieldAt", e)
	}
}

// TestArrayFieldSourceNilWhenUndriven mirrors FieldAt's contract.
func TestArrayFieldSourceNilWhenUndriven(t *testing.T) {
	arr := speaker.NewGridArray(3, speaker.UltrasonicElement, 0.05)
	if src := ArrayFieldSource(arr, acoustics.Position{X: 1}, acoustics.DefaultAir(), true, Exact, Options{}); src != nil {
		t.Fatal("expected nil source for undriven array")
	}
}

// TestLongRangeSourceMatchesBatchEmission pins the mixed multi-element
// source against the batch per-element sum in exact mode (bit-identical
// element chains, same summation order).
func TestLongRangeSourceMatchesBatchEmission(t *testing.T) {
	cmd := amDrive(0.25).Resampled(48000)
	o := attack.DefaultLongRangeOptions()
	o.NumSegments = 6
	plan, err := attack.LongRange(cmd, 30, o)
	if err != nil {
		t.Fatal(err)
	}
	// Batch reference: per-element Emit summed in ElementDrives order.
	var want *audio.Signal
	for _, ed := range plan.ElementDrives(speaker.UltrasonicElement().MaxPowerW) {
		em := speaker.UltrasonicElement().Emit(ed.Drive, ed.PowerW)
		if want == nil {
			want = em
			continue
		}
		for i := range want.Samples {
			want.Samples[i] += em.Samples[i]
		}
	}
	src, elements := LongRangeSource(plan, speaker.UltrasonicElement, Exact, Options{})
	if elements < 7 { // 6 slices + at least one carrier element
		t.Fatalf("only %d elements driven", elements)
	}
	buf := make([]float64, 4096)
	var got []float64
	for {
		n := src.Read(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != want.Len() {
		t.Fatalf("length %d want %d", len(got), want.Len())
	}
	for i := range got {
		if got[i] != want.Samples[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, got[i], want.Samples[i])
		}
	}
}
