package sim

import (
	"math"
	"math/rand"
	"testing"

	"inaudible/internal/audio"
	"inaudible/internal/dsp"
)

// runAll pushes sig through the chain in blocks of the given size and
// returns the concatenated output.
func runAll(c *Chain, sig []float64, block int) []float64 {
	var out []float64
	buf := make([]float64, block)
	for off := 0; off < len(sig); off += block {
		end := off + block
		if end > len(sig) {
			end = len(sig)
		}
		n := copy(buf, sig[off:end])
		out = append(out, c.Process(buf[:n])...)
	}
	return append(out, c.Flush()...)
}

func noiseSignal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func relErr(got, want []float64) float64 {
	if len(got) != len(want) {
		return math.Inf(1)
	}
	var num, den float64
	for i := range got {
		d := got[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// TestChainLengthContract checks total output length equals total input
// for a representative mixed chain at several block sizes.
func TestChainLengthContract(t *testing.T) {
	x := noiseSignal(10000, 1)
	for _, block := range []int{64, 1000, 4096, len(x)} {
		c := Compile(Options{BlockSamples: block},
			GainStage(0.5),
			FIRStage(dsp.LowPassFIR(101, 0.2), block),
			DCBlockStage(15, 48000),
			DelayStage(37),
			FIRStage(dsp.HighPassFIR(51, 0.01), block),
		)
		out := runAll(c, x, block)
		if len(out) != len(x) {
			t.Fatalf("block %d: output %d samples, want %d", block, len(out), len(x))
		}
	}
}

// TestChainBlockingInvariance checks that chunking does not change the
// output stream bit for bit.
func TestChainBlockingInvariance(t *testing.T) {
	x := noiseSignal(9137, 2)
	mk := func() *Chain {
		return Compile(Options{},
			GainStage(1.3),
			FIRStage(dsp.LowPassFIR(101, 0.2), 0),
			DCBlockStage(15, 48000),
		)
	}
	want := runAll(mk(), x, len(x))
	for _, block := range []int{1, 17, 512, 4096} {
		got := runAll(mk(), x, block)
		if len(got) != len(want) {
			t.Fatalf("block %d: length %d want %d", block, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("block %d: sample %d differs", block, i)
			}
		}
	}
}

// TestFusionCollapsesLTIRuns checks the compiler fuses gain+FIR+gain+FIR
// into a single filter stage and preserves the output within convolution
// rounding.
func TestFusionCollapsesLTIRuns(t *testing.T) {
	x := noiseSignal(8192, 3)
	stages := func() []Stage {
		return []Stage{
			GainStage(2),
			FIRStage(dsp.LowPassFIR(101, 0.2), 0),
			GainStage(0.25),
			FIRStage(dsp.HighPassFIR(51, 0.02), 0),
		}
	}
	fused := Compile(Options{}, stages()...)
	if n := len(fused.Stages()); n != 1 {
		t.Fatalf("fused chain has %d stages, want 1", n)
	}
	plain := Compile(Options{NoFuse: true}, stages()...)
	if n := len(plain.Stages()); n != 4 {
		t.Fatalf("unfused chain has %d stages, want 4", n)
	}
	got := runAll(fused, x, 1024)
	want := runAll(plain, x, 1024)
	// The cascade truncates each filter's tail at the signal edges while
	// the fused filter truncates once at the end, so only the interior is
	// comparable; there the two are identical up to convolution rounding.
	if e := relErr(got[200:len(got)-200], want[200:len(want)-200]); e > 1e-9 {
		t.Fatalf("fusion changed output: rel err %v", e)
	}
}

// TestFusionIdentityGainDropped checks unity-gain runs disappear.
func TestFusionIdentityGainDropped(t *testing.T) {
	c := Compile(Options{}, GainStage(2), GainStage(0.5), PolyStageIdentity())
	if n := len(c.Stages()); n != 1 {
		t.Fatalf("chain has %d stages, want 1 (identity gain dropped)", n)
	}
}

// PolyStageIdentity is a test helper: a non-LTI stage that passes
// samples through.
func PolyStageIdentity() Stage { return Memoryless("id", func([]float64) {}) }

// TestParallelSumAlignsBranches checks branch outputs sum sample-aligned
// even when their internal buffering differs.
func TestParallelSumAlignsBranches(t *testing.T) {
	x := noiseSignal(6000, 4)
	// Branch A: plain gain. Branch B: FIR with its own segmentation.
	lp := dsp.LowPassFIR(101, 0.2)
	par := ParallelSum(
		Compile(Options{}, GainStage(1)),
		Compile(Options{}, FIRStage(lp, 333)),
	)
	c := NewChain(par)
	got := runAll(c, x, 250)
	if len(got) != len(x) {
		t.Fatalf("length %d want %d", len(got), len(x))
	}
	want := lp.Apply(x)
	for i := range got {
		w := x[i] + want[i]
		if math.Abs(got[i]-w) > 1e-9 {
			t.Fatalf("sample %d: got %v want %v", i, got[i], w)
		}
	}
}

// TestDelayStage checks the integer delay line shifts and truncates.
func TestDelayStage(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	c := NewChain(DelayStage(2))
	got := runAll(c, x, 2)
	want := []float64{0, 0, 1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

// TestVarDelayStageStaticMatchesDelay checks a constant time-varying
// delay agrees with the integer delay line.
func TestVarDelayStageStaticMatchesDelay(t *testing.T) {
	x := noiseSignal(500, 5)
	v := NewChain(VarDelayStage(48000, 0.01, func(float64) float64 { return 7.0 / 48000 }))
	d := NewChain(DelayStage(7))
	got := runAll(v, append([]float64(nil), x...), 100)
	want := runAll(d, append([]float64(nil), x...), 100)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("sample %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestVarGainSchedule checks the scheduled gain interpolates in dB.
func TestVarGainSchedule(t *testing.T) {
	g := scheduleGain([]SchedulePoint{{AtSeconds: 0, GainDB: -20}, {AtSeconds: 1, GainDB: 0}})
	if got := g(0); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("t=0: %v", got)
	}
	if got := g(1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("t=1: %v", got)
	}
	if got := g(0.5); math.Abs(got-0.316227766) > 1e-6 {
		t.Fatalf("t=0.5: %v", got)
	}
	if got := g(2); math.Abs(got-1) > 1e-12 {
		t.Fatalf("t=2 (past end): %v", got)
	}
}

// TestMixSourcesSumsBranches checks per-branch chains mix into one field.
func TestMixSourcesSumsBranches(t *testing.T) {
	a := audio.FromSamples(48000, noiseSignal(5000, 6))
	b := audio.FromSamples(48000, noiseSignal(5000, 7))
	src := MixSources(
		Branch{Source: SignalSource(a), Chain: Compile(Options{}, GainStage(2))},
		Branch{Source: SignalSource(b), Chain: Compile(Options{}, GainStage(3))},
	)
	buf := make([]float64, 777)
	var got []float64
	for {
		n := src.Read(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != a.Len() {
		t.Fatalf("length %d want %d", len(got), a.Len())
	}
	for i := range got {
		want := 2*a.Samples[i] + 3*b.Samples[i]
		if math.Abs(got[i]-want) > 1e-12 {
			t.Fatalf("sample %d: %v want %v", i, got[i], want)
		}
	}
}

// TestProbeRMS checks the pass-through energy probe.
func TestProbeRMS(t *testing.T) {
	p := NewProbe()
	c := NewChain(p)
	x := noiseSignal(4096, 8)
	runAll(c, append([]float64(nil), x...), 512)
	if got, want := p.RMS(), dsp.RMS(x); math.Abs(got-want) > 1e-12 {
		t.Fatalf("probe rms %v want %v", got, want)
	}
}

// TestChainSteadyStateAllocs checks the streaming hop path stops
// allocating once warmed up, including FIR, resampler, parallel branches
// and noise injection.
func TestChainSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := Compile(Options{},
		GainStage(0.9),
		FIRStage(dsp.LowPassFIR(255, 0.2), 4096),
		PinkNoiseStage(rng, 0.01),
		ParallelSum(
			Compile(Options{}, DelayStage(100), FIRStage(dsp.LowPassFIR(101, 0.3), 4096)),
			Compile(Options{}, GainStage(0.5)),
		),
		DCBlockStage(15, 192000),
		WhiteNoiseStage(rng, 0.001),
		ResampleStage(192000, 48000),
		QuantizeStage(16),
	)
	block := noiseSignal(4096, 10)
	for i := 0; i < 64; i++ {
		c.Process(block)
	}
	allocs := testing.AllocsPerRun(100, func() { c.Process(block) })
	if allocs > 0 {
		t.Fatalf("steady-state Process allocates %v times per block", allocs)
	}
}
