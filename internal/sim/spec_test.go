package sim

import (
	"path/filepath"
	"testing"

	"inaudible/internal/stream"
)

// TestSpecBaselineRuns compiles and runs a minimal free-field baseline
// scenario end to end into the guard.
func TestSpecBaselineRuns(t *testing.T) {
	sp := &Spec{
		Name:       "test-baseline",
		Text:       "alexa, play music",
		Attack:     AttackSpec{Kind: "baseline", PowerW: 18.7},
		AmbientSPL: 40,
		Seed:       1,
		Path:       PathSpec{DistanceM: 2},
		Guard:      GuardSpec{KeepRecording: true},
	}
	res, err := SimulateSpec(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Taps) != 1 {
		t.Fatalf("taps %d want 1", len(res.Taps))
	}
	tap := res.Taps[0]
	if !tap.Final.Final {
		t.Fatal("missing final verdict")
	}
	if tap.SPLAtDevice < 30 || tap.SPLAtDevice > 120 {
		t.Fatalf("implausible SPL at device: %v", tap.SPLAtDevice)
	}
	if tap.Recording == nil || tap.Recording.Len() == 0 {
		t.Fatal("KeepRecording did not retain audio")
	}
	if tap.Recording.Rate != 48000 {
		t.Fatalf("recording rate %v", tap.Recording.Rate)
	}
	if len(tap.Verdicts) == 0 {
		t.Fatal("no interim verdicts at default cadence")
	}
	if res.Elements != 1 || res.TotalPowerW != 18.7 {
		t.Fatalf("rig metadata: %d elements, %v W", res.Elements, res.TotalPowerW)
	}
}

// TestSpecRoomMovingMultiTap exercises the full feature set in one run:
// long-range source, power schedule, moving attacker, multipath room,
// extra microphone tap — every tap with its own guard session.
func TestSpecRoomMovingMultiTap(t *testing.T) {
	sp := &Spec{
		Name: "test-room",
		Text: "alexa, play music",
		Attack: AttackSpec{
			Kind: "longrange", PowerW: 200, Segments: 8,
			ScheduleDB: []SchedulePoint{{AtSeconds: 0, GainDB: -6}, {AtSeconds: 0.5, GainDB: 0}},
		},
		AmbientSPL: 40,
		Seed:       3,
		Path: PathSpec{
			MoveToM: 2.2,
			Room: &RoomSpec{
				LxM: 6.5, LyM: 4, LzM: 2.5, Reflection: 0.35,
				Attacker:  [3]float64{1, 2, 1.2},
				Victim:    [3]float64{4, 2, 0.8},
				ExtraMics: [][3]float64{{5.5, 3, 1}},
			},
		},
	}
	s, err := sp.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	var live int
	s.OnVerdict(func(string, stream.Verdict) { live++ })
	res := s.Run()
	if live == 0 {
		t.Fatal("no live interim verdicts reached the callback")
	}
	if len(res.Taps) != 2 {
		t.Fatalf("taps %d want 2 (victim + extra mic)", len(res.Taps))
	}
	for _, tap := range res.Taps {
		if !tap.Final.Final {
			t.Fatalf("tap %s missing final verdict", tap.Label)
		}
		if tap.Final.Samples == 0 {
			t.Fatalf("tap %s consumed no audio", tap.Label)
		}
	}
	if res.Elements < 9 {
		t.Fatalf("only %d elements", res.Elements)
	}
}

// TestSpecExampleFilesParse pins the committed example specs: they must
// stay loadable and compilable as the schema evolves.
func TestSpecExampleFilesParse(t *testing.T) {
	for _, name := range []string{"longrange_room.json", "baseline_driveby.json"} {
		sp, err := LoadSpec(filepath.Join("..", "..", "examples", "specs", name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := sp.Build(nil); err != nil {
			t.Fatalf("%s does not compile: %v", name, err)
		}
	}
}

// TestSpecRejectsBadInput pins the error paths.
func TestSpecRejectsBadInput(t *testing.T) {
	if _, err := SimulateSpec(&Spec{Text: "hi", Attack: AttackSpec{Kind: "warp"}, Path: PathSpec{DistanceM: 1}}, nil); err == nil {
		t.Fatal("unknown attack kind accepted")
	}
	if _, err := SimulateSpec(&Spec{Text: "hi", Attack: AttackSpec{Kind: "voice"}, Device: "toaster", Path: PathSpec{DistanceM: 1}}, nil); err == nil {
		t.Fatal("unknown device accepted")
	}
	if _, err := SimulateSpec(&Spec{Text: "hi", Attack: AttackSpec{Kind: "voice"}}, nil); err == nil {
		t.Fatal("missing geometry accepted")
	}
	if _, err := ParseSpec([]byte("{not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}
