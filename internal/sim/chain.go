package sim

import (
	"math"

	"inaudible/internal/audio"
	"inaudible/internal/dsp"
)

// Options tunes how chains are compiled.
type Options struct {
	// BlockSamples is the processing block size (source read size and FIR
	// segment hint); <= 0 selects 4096.
	BlockSamples int
	// FIRTaps is the design length for filters approximating the
	// whole-buffer frequency-domain responses; <= 0 selects 511.
	FIRTaps int
	// NoFuse disables LTI fusion (for parity tests of the fusion pass).
	NoFuse bool
}

// Block returns the effective processing block size.
func (o Options) Block() int {
	if o.BlockSamples <= 0 {
		return 4096
	}
	return o.BlockSamples
}

// Taps returns the effective FIR design length.
func (o Options) Taps() int {
	if o.FIRTaps <= 0 {
		return 511
	}
	return o.FIRTaps
}

// Chain runs a sequence of stages as one block pipeline. A Chain is
// itself a Stage, so chains nest (parallel room branches are chains).
type Chain struct {
	stages []Stage
	out    []float64
}

// NewChain assembles stages into a pipeline without fusion. Nested
// chains are flattened.
func NewChain(stages ...Stage) *Chain {
	c := &Chain{}
	for _, s := range stages {
		if sub, ok := s.(*Chain); ok {
			c.stages = append(c.stages, sub.stages...)
			continue
		}
		c.stages = append(c.stages, s)
	}
	return c
}

// Compile assembles stages into a pipeline, fusing adjacent LTI stages
// (gains and FIR filters) into single overlap-save convolutions: the
// speaker response x propagation attenuation x device body filter
// collapse into one dsp.StreamFIR on the shared plan cache. Fusion
// preserves the per-stage arithmetic up to FIR convolution rounding
// (~1e-12 for unit-scale responses).
func Compile(o Options, stages ...Stage) *Chain {
	c := NewChain(stages...)
	if o.NoFuse {
		return c
	}
	return NewChain(fuse(c.stages, o)...)
}

// fuse merges maximal runs of adjacent LTI stages.
func fuse(stages []Stage, o Options) []Stage {
	var out []Stage
	var runTaps *dsp.FIR
	var runGain float64 = 1
	active := false

	flushRun := func() {
		if !active {
			return
		}
		switch {
		case runTaps == nil && runGain == 1:
			// Identity: drop.
		case runTaps == nil:
			out = append(out, GainStage(runGain))
		default:
			taps := runTaps.Taps
			if runGain != 1 {
				scaled := make([]float64, len(taps))
				for i, v := range taps {
					scaled[i] = v * runGain
				}
				taps = scaled
			}
			out = append(out, FIRStage(&dsp.FIR{Taps: taps}, o.Block()))
		}
		runTaps, runGain, active = nil, 1, false
	}

	for _, s := range stages {
		l, ok := s.(linear)
		if !ok {
			flushRun()
			out = append(out, s)
			continue
		}
		taps, gain := l.lti()
		active = true
		runGain *= gain
		if taps != nil {
			if runTaps == nil {
				runTaps = taps
			} else {
				runTaps = &dsp.FIR{Taps: dsp.Convolve(runTaps.Taps, taps.Taps)}
			}
		}
	}
	flushRun()
	return out
}

// Stages exposes the compiled stage list (for tests and reporting).
func (c *Chain) Stages() []Stage { return c.stages }

// Process pushes one block through every stage and returns the samples
// that emerged from the end of the chain. The returned slice is reused.
func (c *Chain) Process(block []float64) []float64 {
	cur := block
	for _, s := range c.stages {
		cur = s.Process(cur)
		if len(cur) == 0 {
			cur = nil
		}
	}
	return cur
}

// Flush drains every stage in order, pushing each stage's tail through
// the rest of the chain, and returns the remaining output.
func (c *Chain) Flush() []float64 {
	c.out = c.out[:0]
	for i := range c.stages {
		cur := c.stages[i].Flush()
		for j := i + 1; j < len(c.stages); j++ {
			cur = c.stages[j].Process(cur)
		}
		c.out = append(c.out, cur...)
	}
	return c.out
}

// Reset restores every stage for a new session.
func (c *Chain) Reset() {
	for _, s := range c.stages {
		s.Reset()
	}
	c.out = c.out[:0]
}

// Latency sums the stages' buffering latencies (saturating).
func (c *Chain) Latency() int {
	var t int
	for _, s := range c.stages {
		l := s.Latency()
		if l >= math.MaxInt32 || t+l >= math.MaxInt32 {
			return math.MaxInt32
		}
		t += l
	}
	return t
}

// ---- parallel branches ----

// parallelStage feeds one input stream through several branches and sums
// their outputs sample-aligned — the image-source room model's direct
// path plus reflections. Branches buffer independently (FIR segmentation
// differs per branch), so outputs are queued per branch and emitted as
// the minimum available across branches.
type parallelStage struct {
	branches []Stage
	fifos    [][]float64
	scratch  []float64
	out      []float64
}

// ParallelSum runs branches over copies of the same input and sums their
// outputs. Every branch must obey the Stage length contract.
func ParallelSum(branches ...Stage) Stage {
	if len(branches) == 0 {
		panic("sim: ParallelSum needs at least one branch")
	}
	return &parallelStage{branches: branches, fifos: make([][]float64, len(branches))}
}

func (p *parallelStage) Process(block []float64) []float64 {
	for i, b := range p.branches {
		if cap(p.scratch) < len(block) {
			p.scratch = make([]float64, len(block))
		}
		sc := p.scratch[:len(block)]
		copy(sc, block)
		p.fifos[i] = append(p.fifos[i], b.Process(sc)...)
	}
	return p.emit(false)
}

func (p *parallelStage) Flush() []float64 {
	for i, b := range p.branches {
		p.fifos[i] = append(p.fifos[i], b.Flush()...)
	}
	return p.emit(true)
}

// emit sums and releases the samples available on every branch.
func (p *parallelStage) emit(all bool) []float64 {
	n := len(p.fifos[0])
	for _, f := range p.fifos[1:] {
		if len(f) < n {
			n = len(f)
		}
	}
	p.out = p.out[:0]
	if n == 0 {
		if all {
			// Length contract: every branch emitted the same total, so all
			// fifos are equally drained here.
			return nil
		}
		return nil
	}
	for cap(p.out) < n {
		p.out = append(p.out[:cap(p.out)], 0)
	}
	p.out = p.out[:n]
	copy(p.out, p.fifos[0][:n])
	for _, f := range p.fifos[1:] {
		for i := 0; i < n; i++ {
			p.out[i] += f[i]
		}
	}
	for i := range p.fifos {
		m := copy(p.fifos[i], p.fifos[i][n:])
		p.fifos[i] = p.fifos[i][:m]
	}
	return p.out
}

func (p *parallelStage) Reset() {
	for i, b := range p.branches {
		b.Reset()
		p.fifos[i] = p.fifos[i][:0]
	}
}

func (p *parallelStage) Latency() int {
	var max int
	for _, b := range p.branches {
		if l := b.Latency(); l > max {
			max = l
		}
	}
	return max
}

// ---- sources ----

// Source produces the input stream of a simulation (the attacker's drive
// waveforms, a talker's voice). Read fills dst and returns the sample
// count; 0 means the stream ended.
type Source interface {
	Read(dst []float64) int
}

// signalSource streams a fixed waveform.
type signalSource struct {
	samples []float64
	pos     int
}

// SignalSource streams an in-memory waveform.
func SignalSource(s *audio.Signal) Source { return &signalSource{samples: s.Samples} }

func (s *signalSource) Read(dst []float64) int {
	n := copy(dst, s.samples[s.pos:])
	s.pos += n
	return n
}

// Branch pairs a source with the chain that processes it, one emitting
// element of a mixed field.
type Branch struct {
	Source Source
	Chain  *Chain
}

// mixSource sums the outputs of several source+chain branches — the
// colocated-array field synthesis: every element's drive through its own
// speaker physics, summed at the 1 m reference.
type mixSource struct {
	branches []Branch
	fifos    [][]float64
	done     []bool
	scratch  []float64
}

// MixSources sums branch outputs into one stream. Branches must produce
// equal total lengths (same drive durations).
func MixSources(branches ...Branch) Source {
	if len(branches) == 0 {
		panic("sim: MixSources needs at least one branch")
	}
	return &mixSource{
		branches: branches,
		fifos:    make([][]float64, len(branches)),
		done:     make([]bool, len(branches)),
	}
}

func (m *mixSource) Read(dst []float64) int {
	if len(dst) == 0 {
		return 0
	}
	if cap(m.scratch) < len(dst) {
		m.scratch = make([]float64, len(dst))
	}
	for {
		// How much is ready on every branch?
		avail := -1
		allDone := true
		for i := range m.branches {
			if !m.done[i] {
				allDone = false
			}
			if avail < 0 || len(m.fifos[i]) < avail {
				avail = len(m.fifos[i])
			}
		}
		if avail >= len(dst) || (allDone && avail > 0) {
			n := avail
			if n > len(dst) {
				n = len(dst)
			}
			copy(dst[:n], m.fifos[0][:n])
			for _, f := range m.fifos[1:] {
				for i := 0; i < n; i++ {
					dst[i] += f[i]
				}
			}
			for i := range m.fifos {
				k := copy(m.fifos[i], m.fifos[i][n:])
				m.fifos[i] = m.fifos[i][:k]
			}
			return n
		}
		if allDone {
			return 0
		}
		// Pull another block through every live branch.
		for i, b := range m.branches {
			if m.done[i] {
				continue
			}
			sc := m.scratch[:len(dst)]
			n := b.Source.Read(sc)
			if n == 0 {
				m.fifos[i] = append(m.fifos[i], b.Chain.Flush()...)
				m.done[i] = true
				continue
			}
			m.fifos[i] = append(m.fifos[i], b.Chain.Process(sc[:n])...)
		}
	}
}

// ---- running ----

// RunSignal pushes a whole signal through the chain block by block and
// returns the output at outRate. The input is not modified.
func RunSignal(c *Chain, in *audio.Signal, outRate float64, o Options) *audio.Signal {
	block := o.Block()
	buf := make([]float64, block)
	out := make([]float64, 0, in.Len())
	for off := 0; off < in.Len(); off += block {
		end := off + block
		if end > in.Len() {
			end = in.Len()
		}
		n := copy(buf, in.Samples[off:end])
		out = append(out, c.Process(buf[:n])...)
	}
	out = append(out, c.Flush()...)
	return audio.FromSamples(outRate, out)
}

// RunSource drains a source through the chain and returns the output at
// outRate.
func RunSource(c *Chain, src Source, outRate float64, o Options) *audio.Signal {
	block := o.Block()
	buf := make([]float64, block)
	var out []float64
	for {
		n := src.Read(buf)
		if n == 0 {
			break
		}
		out = append(out, c.Process(buf[:n])...)
	}
	out = append(out, c.Flush()...)
	return audio.FromSamples(outRate, out)
}
