// Package sim is the composable block-based simulation engine: every
// physical layer of the paper's end-to-end chain — speaker drive, array
// field synthesis, air and room propagation, diaphragm demodulation, mic
// capture — is expressed as a Stage, and a Chain compiles stages into one
// block-processing pipeline that can feed the streaming defense guard
// (internal/stream) in bounded memory.
//
// Two realizations coexist:
//
//   - Exact: whole-buffer stages wrapping the reference frequency-domain
//     operators (speaker.ApplyResponse, acoustics.Path.Propagate,
//     mic.Device.Record internals). Chains compiled from exact stages
//     reproduce the seed batch pipeline bit for bit — core.Scenario's
//     Deliver and Emit* run on them.
//   - Streaming: bounded-memory block stages. Memoryless transforms
//     (polynomials, soft clip, gain, quantisation) and recursive ones
//     (DC block, the windowed-sinc resampler) are bit-identical to their
//     batch twins; the whole-buffer frequency-domain filters are
//     approximated by windowed FIR designs (dsp.FIRFromMagnitude) run
//     through overlap-save convolution on the shared FFT plan cache,
//     accurate in-band to well under 1% with a roughly -70 dB stopband
//     floor — the documented parity tolerance.
//
// Adjacent LTI streaming stages (gains, FIR filters) are fused by the
// chain compiler into a single dsp.StreamFIR, so e.g. propagation
// attenuation x device body filter x full-scale normalisation collapse
// into one convolution. After warm-up the streaming hop path allocates
// nothing.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"inaudible/internal/audio"
	"inaudible/internal/dsp"
	"inaudible/internal/nonlinear"
)

// Stage is one block-processing element of a simulation chain.
//
// Contract: over a whole session (all Process calls plus the final
// Flush), a stage emits exactly as many samples as it consumed, aligned
// so that output sample i corresponds to input sample i (stages with
// internal latency compensate for it, like dsp.StreamFIR). Returned
// slices are owned by the stage and reused by the next call; they may
// alias the input block, and stages are free to mutate the input.
type Stage interface {
	// Process consumes block and returns the output samples that became
	// available now (possibly none while the stage buffers).
	Process(block []float64) []float64
	// Flush drains buffered state after the last Process call.
	Flush() []float64
	// Reset restores initial state for a new session, keeping buffers.
	Reset()
	// Latency reports the worst-case number of samples the stage buffers
	// before output becomes available (0 for in-place stages).
	Latency() int
}

// linear is implemented by LTI stages the chain compiler may fuse: a
// stage is either a pure gain (taps == nil) or an FIR with a scalar gain.
type linear interface {
	Stage
	lti() (taps *dsp.FIR, gain float64)
}

// ---- memoryless stages ----

// memoryless applies an in-place sample transform; zero latency, no
// state, no allocation.
type memoryless struct {
	name string
	fn   func(block []float64)
}

// Memoryless wraps an in-place block transform as a Stage.
func Memoryless(name string, fn func(block []float64)) Stage {
	return &memoryless{name: name, fn: fn}
}

func (m *memoryless) Process(block []float64) []float64 {
	m.fn(block)
	return block
}
func (m *memoryless) Flush() []float64 { return nil }
func (m *memoryless) Reset()           {}
func (m *memoryless) Latency() int     { return 0 }

// PolyStage applies a memoryless polynomial transfer function — the
// speaker or diaphragm non-linearity (paper Eq. 1) — bit-identically to
// Polynomial.ApplyInPlace.
func PolyStage(p *nonlinear.Polynomial) Stage {
	return Memoryless("poly", func(b []float64) { p.ApplyInPlace(b) })
}

// SoftClipStage applies a memoryless tanh saturator (amplifier clipping).
func SoftClipStage(sc nonlinear.SoftClip) Stage {
	return Memoryless("softclip", func(b []float64) {
		for i, v := range b {
			b[i] = sc.Eval(v)
		}
	})
}

// QuantizeStage rounds samples to the ADC grid and hard-clips to [-1, 1],
// bit-identically to the mic model's quantiser.
func QuantizeStage(bits int) Stage {
	levels := math.Pow(2, float64(bits-1))
	return Memoryless("quantize", func(b []float64) {
		for i, v := range b {
			v = dsp.Clamp(v, -1, 1)
			b[i] = math.Round(v*levels) / levels
		}
	})
}

// gainStage is a fusable scalar gain.
type gainStage struct{ g float64 }

// GainStage scales the stream by a constant factor. Adjacent gains and
// FIR stages fuse into one filter at compile time.
func GainStage(g float64) Stage { return &gainStage{g: g} }

func (s *gainStage) Process(block []float64) []float64 {
	dsp.Scale(block, s.g)
	return block
}
func (s *gainStage) Flush() []float64         { return nil }
func (s *gainStage) Reset()                   {}
func (s *gainStage) Latency() int             { return 0 }
func (s *gainStage) lti() (*dsp.FIR, float64) { return nil, s.g }

// ---- FIR stage ----

// firStage streams an FIR filter by overlap-save convolution.
type firStage struct {
	fir       *dsp.FIR
	blockHint int

	once sync.Once
	s    *dsp.StreamFIR
}

// FIRStage wraps a linear-phase FIR as a fusable streaming stage.
// blockHint is the preferred fresh-samples-per-segment (<= 0 lets
// dsp.NewStreamFIR choose). The overlap-save engine is built lazily, so
// stages discarded by fusion cost nothing.
func FIRStage(f *dsp.FIR, blockHint int) Stage {
	return &firStage{fir: f, blockHint: blockHint}
}

func (s *firStage) engine() *dsp.StreamFIR {
	s.once.Do(func() { s.s = dsp.NewStreamFIR(s.fir, s.blockHint) })
	return s.s
}

func (s *firStage) Process(block []float64) []float64 { return s.engine().Push(block) }
func (s *firStage) Flush() []float64                  { return s.engine().Flush() }
func (s *firStage) Reset()                            { s.engine().Reset() }
func (s *firStage) Latency() int                      { return s.engine().Block() }
func (s *firStage) lti() (*dsp.FIR, float64)          { return s.fir, 1 }

// ---- recursive / stateful streaming stages ----

// dcBlockStage is the streaming twin of dsp.DCBlock: same one-pole
// recurrence, so any blocking reproduces the batch output bit for bit.
type dcBlockStage struct {
	a            float64
	prevX, prevY float64
}

// DCBlockStage models AC coupling with the mic chain's DC-blocking
// high-pass at the given corner frequency.
func DCBlockStage(cornerHz, rate float64) Stage {
	return &dcBlockStage{a: 1 - 2*math.Pi*cornerHz/rate}
}

func (s *dcBlockStage) Process(block []float64) []float64 {
	for i, v := range block {
		y := v - s.prevX + s.a*s.prevY
		s.prevX = v
		s.prevY = y
		block[i] = y
	}
	return block
}
func (s *dcBlockStage) Flush() []float64 { return nil }
func (s *dcBlockStage) Reset()           { s.prevX, s.prevY = 0, 0 }
func (s *dcBlockStage) Latency() int     { return 0 }

// delayStage is a pure integer-sample delay line (the physical
// propagation delay). The tail that would arrive after the session end is
// dropped, mirroring the batch path's fixed-length output.
type delayStage struct {
	ring []float64
	pos  int
}

// DelayStage delays the stream by n samples.
func DelayStage(n int) Stage {
	if n < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", n))
	}
	return &delayStage{ring: make([]float64, n)}
}

func (s *delayStage) Process(block []float64) []float64 {
	if len(s.ring) == 0 {
		return block
	}
	for i, v := range block {
		out := s.ring[s.pos]
		s.ring[s.pos] = v
		s.pos++
		if s.pos == len(s.ring) {
			s.pos = 0
		}
		block[i] = out
	}
	return block
}
func (s *delayStage) Flush() []float64 { return nil }
func (s *delayStage) Reset() {
	for i := range s.ring {
		s.ring[i] = 0
	}
	s.pos = 0
}
func (s *delayStage) Latency() int { return 0 }

// varDelayStage applies a time-varying delay (a moving source) by linear
// interpolation into a history ring.
type varDelayStage struct {
	rate    float64
	delayAt func(t float64) float64 // delay in seconds at stream time t
	ring    []float64               // power-of-two history
	mask    int
	n       int // absolute sample index
}

// VarDelayStage delays the stream by delayAt(t) seconds, re-evaluated per
// sample; maxDelaySeconds bounds the history kept. Negative or
// out-of-range delays are clamped.
func VarDelayStage(rate float64, maxDelaySeconds float64, delayAt func(t float64) float64) Stage {
	max := int(math.Ceil(maxDelaySeconds*rate)) + 2
	size := dsp.NextPowerOfTwo(max + 1)
	return &varDelayStage{rate: rate, delayAt: delayAt, ring: make([]float64, size), mask: size - 1}
}

func (s *varDelayStage) Process(block []float64) []float64 {
	maxD := float64(len(s.ring) - 2)
	for i, v := range block {
		s.ring[s.n&s.mask] = v
		d := s.delayAt(float64(s.n)/s.rate) * s.rate
		if d < 0 {
			d = 0
		} else if d > maxD {
			d = maxD
		}
		di := int(d)
		frac := d - float64(di)
		p0 := s.n - di
		v0, v1 := 0.0, 0.0
		if p0 >= 0 {
			v0 = s.ring[p0&s.mask]
		}
		if p0-1 >= 0 {
			v1 = s.ring[(p0-1)&s.mask]
		}
		block[i] = v0*(1-frac) + v1*frac
		s.n++
	}
	return block
}
func (s *varDelayStage) Flush() []float64 { return nil }
func (s *varDelayStage) Reset() {
	for i := range s.ring {
		s.ring[i] = 0
	}
	s.n = 0
}
func (s *varDelayStage) Latency() int { return 0 }

// varGainStage applies a time-varying gain (scheduled attacker power,
// spreading loss of a moving source).
type varGainStage struct {
	rate   float64
	gainAt func(t float64) float64
	n      int
}

// VarGainStage scales the stream by gainAt(t), re-evaluated per sample.
func VarGainStage(rate float64, gainAt func(t float64) float64) Stage {
	return &varGainStage{rate: rate, gainAt: gainAt}
}

func (s *varGainStage) Process(block []float64) []float64 {
	for i, v := range block {
		block[i] = v * s.gainAt(float64(s.n)/s.rate)
		s.n++
	}
	return block
}
func (s *varGainStage) Flush() []float64 { return nil }
func (s *varGainStage) Reset()           { s.n = 0 }
func (s *varGainStage) Latency() int     { return 0 }

// addStage injects an additive source (noise) into the stream.
type addStage struct {
	name    string
	gen     func(dst []float64)
	scratch []float64
}

// AddStage adds gen's output to the stream sample for sample: ambient
// room noise, mic self-noise, interferers.
func AddStage(name string, gen func(dst []float64)) Stage {
	return &addStage{name: name, gen: gen}
}

func (s *addStage) Process(block []float64) []float64 {
	if cap(s.scratch) < len(block) {
		s.scratch = make([]float64, len(block))
	}
	sc := s.scratch[:len(block)]
	s.gen(sc)
	for i := range block {
		block[i] += sc[i]
	}
	return block
}
func (s *addStage) Flush() []float64 { return nil }
func (s *addStage) Reset()           {}
func (s *addStage) Latency() int     { return 0 }

// WhiteNoiseStage adds Gaussian noise at the given RMS from rng — the mic
// model's equivalent input noise, drawing the exact sample sequence the
// batch path draws.
func WhiteNoiseStage(rng *rand.Rand, rms float64) Stage {
	return AddStage("white-noise", func(dst []float64) {
		for i := range dst {
			dst[i] = rng.NormFloat64() * rms
		}
	})
}

// pinkGainOnce calibrates the stationary RMS of the Kellet pink filter
// (unit-variance white input) once, from a private deterministic RNG.
var pinkGainOnce struct {
	sync.Once
	inv float64
}

// pinkUnitRMS returns 1/RMS of the raw pink generator output.
func pinkUnitRMS() float64 {
	pinkGainOnce.Do(func() {
		rng := rand.New(rand.NewSource(0x9121))
		gen := pinkGen(rng)
		var sum float64
		const n = 1 << 17
		buf := make([]float64, 1024)
		for i := 0; i < n/1024; i++ {
			gen(buf)
			for _, v := range buf {
				sum += v * v
			}
		}
		pinkGainOnce.inv = 1 / math.Sqrt(sum/float64(n))
	})
	return pinkGainOnce.inv
}

// pinkGen returns a streaming Kellet pink-noise generator over rng —
// the same filter cascade audio.PinkNoise runs.
func pinkGen(rng *rand.Rand) func(dst []float64) {
	var b0, b1, b2, b3, b4, b5, b6 float64
	return func(dst []float64) {
		for i := range dst {
			white := rng.NormFloat64()
			b0 = 0.99886*b0 + white*0.0555179
			b1 = 0.99332*b1 + white*0.0750759
			b2 = 0.96900*b2 + white*0.1538520
			b3 = 0.86650*b3 + white*0.3104856
			b4 = 0.55000*b4 + white*0.5329522
			b5 = -0.7616*b5 - white*0.0168980
			dst[i] = b0 + b1 + b2 + b3 + b4 + b5 + b6 + white*0.5362
			b6 = white * 0.115926
		}
	}
}

// PinkNoiseStage adds 1/f ambient room noise at the given RMS. The batch
// generator normalises each finite realisation to the exact RMS; the
// streaming generator cannot know the realisation's RMS in advance, so it
// scales by the filter's calibrated stationary gain — levels agree to a
// few percent over multi-second sessions (documented tolerance).
func PinkNoiseStage(rng *rand.Rand, rms float64) Stage {
	gen := pinkGen(rng)
	g := rms * pinkUnitRMS()
	return AddStage("pink-noise", func(dst []float64) {
		gen(dst)
		for i := range dst {
			dst[i] *= g
		}
	})
}

// resampleStage wraps the streaming windowed-sinc rate converter.
type resampleStage struct{ s *dsp.StreamResampler }

// ResampleStage converts the stream between sample rates, bit-identically
// to the batch sinc resampler (the mic ADC step).
func ResampleStage(from, to float64) Stage {
	return &resampleStage{s: dsp.NewStreamResampler(from, to)}
}

func (s *resampleStage) Process(block []float64) []float64 { return s.s.Push(block) }
func (s *resampleStage) Flush() []float64                  { return s.s.Flush() }
func (s *resampleStage) Reset()                            { s.s.Reset() }
func (s *resampleStage) Latency() int                      { return 2 * streamResampleWindow }

// streamResampleWindow mirrors the resampler's kernel half-width for
// latency reporting.
const streamResampleWindow = 32

// ---- probes and whole-buffer stages ----

// Probe passes the stream through unchanged while accumulating its
// energy, exposing the RMS of everything seen — how Deliver reports the
// SPL at the device without materialising the intermediate waveform.
type Probe struct {
	sum float64
	n   int
}

// NewProbe returns a pass-through energy probe.
func NewProbe() *Probe { return &Probe{} }

func (p *Probe) Process(block []float64) []float64 {
	for _, v := range block {
		p.sum += v * v
	}
	p.n += len(block)
	return block
}
func (p *Probe) Flush() []float64 { return nil }
func (p *Probe) Reset()           { p.sum, p.n = 0, 0 }
func (p *Probe) Latency() int     { return 0 }

// RMS returns the root-mean-square of all samples seen so far.
func (p *Probe) RMS() float64 {
	if p.n == 0 {
		return 0
	}
	return math.Sqrt(p.sum / float64(p.n))
}

// batchStage buffers the entire stream and applies a whole-buffer
// transform at Flush — the exact-mode realization of the frequency-domain
// reference operators. It trades bounded memory for bit-exactness.
type batchStage struct {
	name string
	rate float64
	fn   func(*audio.Signal) *audio.Signal
	buf  []float64
}

// BatchTransform wraps a whole-buffer signal transform as a Stage. rate
// is the input sample rate handed to fn.
func BatchTransform(name string, rate float64, fn func(*audio.Signal) *audio.Signal) Stage {
	return &batchStage{name: name, rate: rate, fn: fn}
}

func (s *batchStage) Process(block []float64) []float64 {
	s.buf = append(s.buf, block...)
	return nil
}
func (s *batchStage) Flush() []float64 {
	out := s.fn(audio.FromSamples(s.rate, s.buf))
	return out.Samples
}
func (s *batchStage) Reset()       { s.buf = s.buf[:0] }
func (s *batchStage) Latency() int { return math.MaxInt32 }
