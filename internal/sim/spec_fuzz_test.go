package sim

import (
	"strings"
	"testing"
)

// FuzzSpecLoader hardens the declarative-scenario loader against hostile
// JSON, mirroring FuzzWAVReader for the WAV decoder: whatever the bytes,
// ParseSpec must return a spec or an error — never panic — and any spec
// it accepts must satisfy its own validation contract (finite, bounded
// parameters), so downstream Build cannot be driven into runaway
// allocations or NaN-poisoned filters.
func FuzzSpecLoader(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`not json at all`,
		`{"text":"ok google, take a picture","attack":{"kind":"baseline","power_w":18.7},"path":{"distance_m":3}}`,
		`{"text":"alexa, play music","attack":{"kind":"longrange","power_w":300,"segments":60},"path":{"distance_m":7.6,"extra_taps_m":[2,4]}}`,
		`{"attack":{"kind":"voice","voice_spl":66},"path":{"room":{"lx_m":6,"ly_m":4,"lz_m":3,"reflection":0.5,"attacker":[1,1,1],"victim":[5,3,1.5]}}}`,
		// Hostile parameter values.
		`{"attack":{"kind":"baseline","power_w":1e308},"path":{"distance_m":3}}`,
		`{"attack":{"kind":"longrange","segments":2147483647},"path":{"distance_m":3}}`,
		`{"attack":{"kind":"baseline","power_w":-5},"path":{"distance_m":3}}`,
		`{"attack":{"kind":"baseline"},"path":{"distance_m":-1}}`,
		`{"path":{"distance_m":3},"block_samples":1073741824}`,
		`{"path":{"distance_m":3},"ambient_spl":4e38}`,
		`{"attack":{"kind":"baseline","schedule_db":[{"at_s":1e308,"gain_db":-1e308}]},"path":{"distance_m":3}}`,
		`{"path":{"room":{"lx_m":1e308,"ly_m":-4,"lz_m":3,"reflection":1.5}}}`,
		`{"text":"` + strings.Repeat("a", 10000) + `","path":{"distance_m":3}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := ParseSpec(data)
		if err != nil {
			return
		}
		if sp == nil {
			t.Fatal("ParseSpec returned nil spec without error")
		}
		// A spec that survived parsing must satisfy its own contract.
		if err := sp.Validate(); err != nil {
			t.Fatalf("parsed spec fails Validate: %v", err)
		}
		if sp.Attack.Segments > maxSpecSegments || len(sp.Text) > maxSpecTextLen {
			t.Fatalf("validated spec exceeds bounds: segments=%d text=%d", sp.Attack.Segments, len(sp.Text))
		}
	})
}
