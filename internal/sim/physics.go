package sim

import (
	"fmt"
	"math"
	"math/rand"

	"inaudible/internal/acoustics"
	"inaudible/internal/attack"
	"inaudible/internal/audio"
	"inaudible/internal/dsp"
	"inaudible/internal/mic"
	"inaudible/internal/speaker"
)

// Mode selects a chain realization.
type Mode int

const (
	// Exact compiles whole-buffer reference stages: bit-identical to the
	// seed batch pipeline, unbounded memory.
	Exact Mode = iota
	// Streaming compiles bounded-memory block stages: memoryless and
	// recursive transforms bit-identical, frequency-domain filters
	// approximated by windowed FIRs (documented tolerance).
	Streaming
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Exact:
		return "exact"
	case Streaming:
		return "streaming"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// SpeakerStages expresses sp.Emit as stages for a drive whose RMS is
// driveRMS at the given rate: drive normalisation to sqrt(effective
// power), the drive-domain non-linearity, the transducer passband and the
// sensitivity conversion to pascals. In Exact mode the passband is the
// reference whole-buffer response; chains built from it reproduce
// sp.Emit bit for bit.
func SpeakerStages(sp *speaker.Speaker, driveRMS, powerW, rate float64, mode Mode, o Options) []Stage {
	if mode == Exact {
		return []Stage{BatchTransform("speaker", rate, func(s *audio.Signal) *audio.Signal {
			return sp.Emit(s, powerW)
		})}
	}
	if driveRMS == 0 || powerW == 0 {
		return []Stage{GainStage(0)}
	}
	if powerW < 0 {
		panic(fmt.Sprintf("sim: negative power %v", powerW))
	}
	return []Stage{
		GainStage(math.Sqrt(sp.EffectivePowerW(powerW)) / driveRMS),
		PolyStage(sp.NL),
		FIRStage(dsp.FIRFromMagnitude(o.Taps(), func(f float64) float64 {
			return sp.ResponseGain(f * rate)
		}), o.Block()),
		GainStage(acoustics.PressureFromSPL(sp.SensitivitySPL)),
	}
}

// PathStages expresses acoustics.Path.Propagate as stages: spreading plus
// ISO 9613 absorption as one attenuation filter, and (when the path
// includes it) the physical propagation delay split into an integer delay
// line and a fractional-delay interpolator. Exact mode wraps the
// reference whole-buffer operator.
func PathStages(p acoustics.Path, rate float64, mode Mode, o Options) []Stage {
	if mode == Exact {
		return []Stage{BatchTransform("air", rate, p.Propagate)}
	}
	var stages []Stage
	if p.IncludeDelay {
		d := p.Distance / acoustics.SpeedOfSound(p.Air.TempC) * rate
		di := int(d)
		frac := d - float64(di)
		if di > 0 {
			stages = append(stages, DelayStage(di))
		}
		if frac > 1e-9 {
			stages = append(stages, FIRStage(dsp.FractionalDelayFIR(63, frac), o.Block()))
		}
	}
	stages = append(stages, FIRStage(dsp.FIRFromMagnitude(o.Taps(), func(f float64) float64 {
		return p.Attenuation(f * rate)
	}), o.Block()))
	return stages
}

// RoomStages expresses acoustics.Room.PropagateInRoom as stages: the
// direct path plus the six first-order image-source reflections run as
// parallel branches (each its own delay + attenuation + reflection loss)
// summed sample-aligned. Exact mode wraps the reference operator.
func RoomStages(r acoustics.Room, from, to acoustics.Position, rate float64, mode Mode, o Options) []Stage {
	if mode == Exact {
		return []Stage{BatchTransform("room", rate, func(s *audio.Signal) *audio.Signal {
			return r.PropagateInRoom(s, from, to)
		})}
	}
	paths := r.ImagePaths(from, to)
	branches := make([]Stage, len(paths))
	for i, pg := range paths {
		p := acoustics.Path{Distance: pg.Distance, Air: r.Air, IncludeDelay: true}
		st := PathStages(p, rate, Streaming, o)
		if pg.Gain != 1 {
			st = append(st, GainStage(pg.Gain))
		}
		branches[i] = Compile(o, st...)
	}
	return []Stage{ParallelSum(branches...)}
}

// AmbientStage injects the room's pink noise at the given SPL (pascals).
func AmbientStage(rng *rand.Rand, spl float64) Stage {
	return PinkNoiseStage(rng, acoustics.PressureFromSPL(spl))
}

// MicStages expresses mic.Device.Record as stages in the reference
// order: body filter, full-scale normalisation, diaphragm non-linearity
// (the demodulation step), AC coupling, equivalent input noise,
// anti-alias low-pass, ADC resampling and quantisation. rng draws the
// self-noise exactly like the batch path (pass the same seeded source
// for sequence-identical noise). In Streaming mode everything except the
// body filter is bit-identical to Record; the body filter is the
// windowed-FIR approximation.
func MicStages(d *mic.Device, rng *rand.Rand, rate float64, mode Mode, o Options) []Stage {
	if mode == Exact {
		return []Stage{BatchTransform("device", rate, func(s *audio.Signal) *audio.Signal {
			return d.Record(s, rng)
		})}
	}
	if rate < 2*d.LPFCutoffHz {
		panic(fmt.Sprintf("sim: simulation rate %v too low for cutoff %v", rate, d.LPFCutoffHz))
	}
	var stages []Stage
	if d.UltrasonicAttenuationDB > 0 {
		stages = append(stages, FIRStage(dsp.FIRFromMagnitude(o.Taps(), func(f float64) float64 {
			return d.BodyGain(f * rate)
		}), o.Block()))
	}
	fsPeak := d.FullScalePeak()
	stages = append(stages,
		GainStage(1/fsPeak),
		PolyStage(d.NL),
		DCBlockStage(15, rate),
	)
	if d.NoiseFloorSPL > 0 && rng != nil {
		noiseRMS := acoustics.PressureFromSPL(d.NoiseFloorSPL) / fsPeak
		stages = append(stages, WhiteNoiseStage(rng, noiseRMS))
	}
	stages = append(stages, FIRStage(dsp.LowPassFIR(511, d.LPFCutoffHz/rate), o.Block()))
	if rate != d.ADCRate {
		stages = append(stages, ResampleStage(rate, d.ADCRate))
	}
	stages = append(stages, QuantizeStage(d.Bits))
	return stages
}

// ElementBranch builds one emitting element of a mixed field: the
// element's drive streamed through its own speaker physics.
func ElementBranch(sp *speaker.Speaker, drive *audio.Signal, powerW float64, mode Mode, o Options) Branch {
	return Branch{
		Source: SignalSource(drive),
		Chain:  Compile(o, SpeakerStages(sp, drive.RMS(), powerW, drive.Rate, mode, o)...),
	}
}

// ArrayFieldSource synthesises the field an array produces at a target
// position with per-element geometry: every driven element's drive runs
// through its own speaker chain and its own exact-path propagation
// (distance, delay, attenuation from the array's cached FieldPlan), and
// the branches sum at the receiver. It is the streaming twin of
// speaker.Array.FieldAt, sharing the same plan cache. Returns nil if no
// element is driven.
func ArrayFieldSource(arr *speaker.Array, target acoustics.Position, air acoustics.Air, compensateDelays bool, mode Mode, o Options) Source {
	plan := arr.PlanFor(target, air, compensateDelays)
	var branches []Branch
	for i, e := range arr.Elements {
		if e.Drive == nil {
			continue
		}
		stages := SpeakerStages(e.Speaker, e.Drive.RMS(), e.PowerW, e.Drive.Rate, mode, o)
		stages = append(stages, PathStages(plan.Path(i), e.Drive.Rate, mode, o)...)
		branches = append(branches, Branch{
			Source: SignalSource(e.Drive),
			Chain:  Compile(o, stages...),
		})
	}
	if len(branches) == 0 {
		return nil
	}
	return MixSources(branches...)
}

// LongRangeSource synthesises the 1 m reference field of a long-range
// plan as a streaming mix: every element drive (segments plus the spread
// carrier, see attack.Plan.ElementDrives) through its own speaker chain,
// summed at the colocated-array reference. It returns the source and the
// number of driven elements.
func LongRangeSource(plan *attack.Plan, proto func() *speaker.Speaker, mode Mode, o Options) (Source, int) {
	drives := plan.ElementDrives(proto().MaxPowerW)
	branches := make([]Branch, 0, len(drives))
	for _, ed := range drives {
		branches = append(branches, ElementBranch(proto(), ed.Drive, ed.PowerW, mode, o))
	}
	if len(branches) == 0 {
		return nil, 0
	}
	return MixSources(branches...), len(branches)
}
