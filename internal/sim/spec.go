package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"

	"inaudible/internal/acoustics"
	"inaudible/internal/attack"
	"inaudible/internal/audio"
	"inaudible/internal/defense"
	"inaudible/internal/mic"
	"inaudible/internal/speaker"
	"inaudible/internal/stream"
	"inaudible/internal/voice"
)

// Spec is a declarative end-to-end scenario: a scenario is data, not a
// new run function. It describes the command, the attack rig, the
// propagation environment (free field or multipath room, optionally a
// moving source and a power schedule) and the capture points, and
// compiles to a streaming chain that pipes straight into the defense
// guard.
type Spec struct {
	// Name labels the scenario in reports.
	Name string `json:"name,omitempty"`
	// Text is the voice command to synthesise (vocabulary text).
	Text string `json:"text"`
	// Attack selects and parameterises the source.
	Attack AttackSpec `json:"attack"`
	// Device is the victim microphone: "phone" (default), "echo" or
	// "reference".
	Device string `json:"device,omitempty"`
	// AmbientSPL is the room's pink-noise level in dB SPL (0 disables).
	AmbientSPL float64 `json:"ambient_spl,omitempty"`
	// Seed drives all randomness (ambient noise, mic self-noise).
	Seed int64 `json:"seed,omitempty"`
	// Path describes propagation from the rig to the capture points.
	Path PathSpec `json:"path"`
	// Guard parameterises the streaming defense sessions.
	Guard GuardSpec `json:"guard,omitempty"`
	// BlockSamples overrides the processing block size.
	BlockSamples int `json:"block_samples,omitempty"`
}

// AttackSpec selects the emission source.
type AttackSpec struct {
	// Kind is "baseline" (single tweeter), "longrange" (spectrum-split
	// array) or "voice" (a legitimate talker, the control condition).
	Kind string `json:"kind"`
	// PowerW is the electrical power (total across elements).
	PowerW float64 `json:"power_w,omitempty"`
	// VoiceSPL is the talker level at 1 m for kind "voice".
	VoiceSPL float64 `json:"voice_spl,omitempty"`
	// CarrierHz overrides the ultrasound carrier (default 30 kHz).
	CarrierHz float64 `json:"carrier_hz,omitempty"`
	// Segments overrides the long-range slice count (default 60).
	Segments int `json:"segments,omitempty"`
	// ScheduleDB ramps the attacker's output over the session: a
	// piecewise-linear gain (dB, 0 = nominal) over time. Models an
	// attacker that sneaks the power up.
	ScheduleDB []SchedulePoint `json:"schedule_db,omitempty"`
}

// SchedulePoint is one knot of the attacker power schedule.
type SchedulePoint struct {
	AtSeconds float64 `json:"at_s"`
	GainDB    float64 `json:"gain_db"`
}

// PathSpec describes propagation and capture geometry.
type PathSpec struct {
	// DistanceM is the rig-to-victim distance (free field), or ignored
	// when Room is set (positions carry the geometry).
	DistanceM float64 `json:"distance_m,omitempty"`
	// MoveToM, when non-zero, moves the source linearly from DistanceM to
	// MoveToM over the session: a walking attacker. Spreading loss and
	// delay vary per sample; absorption is fixed at the midpoint distance
	// (first-order approximation). With a Room, the motion modulates the
	// field on top of the start-position multipath.
	MoveToM float64 `json:"move_to_m,omitempty"`
	// ExtraTapsM adds free-field capture points at these distances, each
	// with its own device chain and guard session.
	ExtraTapsM []float64 `json:"extra_taps_m,omitempty"`
	// Room, when set, switches to the image-source multipath model.
	Room *RoomSpec `json:"room,omitempty"`
}

// RoomSpec is a shoebox room with explicit geometry.
type RoomSpec struct {
	LxM        float64    `json:"lx_m"`
	LyM        float64    `json:"ly_m"`
	LzM        float64    `json:"lz_m"`
	Reflection float64    `json:"reflection"`
	Attacker   [3]float64 `json:"attacker"`
	Victim     [3]float64 `json:"victim"`
	// ExtraMics adds capture points at these positions, each with its own
	// device chain and guard session.
	ExtraMics [][3]float64 `json:"extra_mics,omitempty"`
}

// GuardSpec parameterises the streaming defense sessions.
type GuardSpec struct {
	// EmitEverySeconds is the interim-verdict cadence (default 0.5 s;
	// negative disables interim verdicts).
	EmitEverySeconds float64 `json:"emit_every_s,omitempty"`
	// KeepRecording retains each tap's captured audio in the result
	// (costs memory proportional to session length).
	KeepRecording bool `json:"keep_recording,omitempty"`
}

// ParseSpec decodes a JSON scenario and rejects hostile parameter
// values (see Validate).
func ParseSpec(data []byte) (*Spec, error) {
	var sp Spec
	if err := json.Unmarshal(data, &sp); err != nil {
		return nil, fmt.Errorf("sim: parsing spec: %w", err)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// Validation bounds: generous for every physical scenario, tight enough
// that a hostile spec cannot demand absurd allocations or poison the
// pipeline with non-finite values.
const (
	maxSpecTextLen    = 1 << 12
	maxSpecSegments   = 1 << 12
	maxSpecTaps       = 64
	maxSpecSchedule   = 1 << 12
	maxSpecBlock      = 1 << 22
	maxSpecPowerW     = 1e6
	maxSpecSPL        = 194 // the loudest undistorted sound in air
	maxSpecDistanceM  = 1e4
	maxSpecCarrierHz  = 1e6
	maxSpecRoomM      = 1e3
	maxSpecEmitEveryS = 1e4
)

// finite reports whether every value is a finite float.
func finite(vals ...float64) bool {
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Validate rejects specs whose parameters are non-finite, negative
// where a magnitude is required, or large enough to be hostile (huge
// element counts, absurd block sizes). Build validates automatically;
// callers feeding untrusted JSON get a typed error instead of a panic
// or a runaway allocation.
func (sp *Spec) Validate() error {
	fail := func(field string, v interface{}) error {
		return fmt.Errorf("sim: invalid spec: %s = %v", field, v)
	}
	if len(sp.Text) > maxSpecTextLen {
		return fail("text length", len(sp.Text))
	}
	a := sp.Attack
	if !finite(a.PowerW, a.VoiceSPL, a.CarrierHz) || a.PowerW < 0 || a.PowerW > maxSpecPowerW {
		return fail("attack.power_w", a.PowerW)
	}
	if a.VoiceSPL < 0 || a.VoiceSPL > maxSpecSPL {
		return fail("attack.voice_spl", a.VoiceSPL)
	}
	if a.CarrierHz < 0 || a.CarrierHz > maxSpecCarrierHz {
		return fail("attack.carrier_hz", a.CarrierHz)
	}
	if a.Segments < 0 || a.Segments > maxSpecSegments {
		return fail("attack.segments", a.Segments)
	}
	if len(a.ScheduleDB) > maxSpecSchedule {
		return fail("attack.schedule_db length", len(a.ScheduleDB))
	}
	for _, pt := range a.ScheduleDB {
		if !finite(pt.AtSeconds, pt.GainDB) {
			return fail("attack.schedule_db point", pt)
		}
	}
	p := sp.Path
	if !finite(p.DistanceM, p.MoveToM) || p.DistanceM < 0 || p.DistanceM > maxSpecDistanceM {
		return fail("path.distance_m", p.DistanceM)
	}
	if p.MoveToM < 0 || p.MoveToM > maxSpecDistanceM {
		return fail("path.move_to_m", p.MoveToM)
	}
	if len(p.ExtraTapsM) > maxSpecTaps {
		return fail("path.extra_taps_m length", len(p.ExtraTapsM))
	}
	for _, d := range p.ExtraTapsM {
		if !finite(d) || d <= 0 || d > maxSpecDistanceM {
			return fail("path.extra_taps_m entry", d)
		}
	}
	if r := p.Room; r != nil {
		if !finite(r.LxM, r.LyM, r.LzM) || r.LxM <= 0 || r.LyM <= 0 || r.LzM <= 0 ||
			r.LxM > maxSpecRoomM || r.LyM > maxSpecRoomM || r.LzM > maxSpecRoomM {
			return fail("path.room dimensions", [3]float64{r.LxM, r.LyM, r.LzM})
		}
		if !finite(r.Reflection) || r.Reflection < 0 || r.Reflection >= 1 {
			return fail("path.room.reflection", r.Reflection)
		}
		if len(r.ExtraMics) > maxSpecTaps {
			return fail("path.room.extra_mics length", len(r.ExtraMics))
		}
		positions := append([][3]float64{r.Attacker, r.Victim}, r.ExtraMics...)
		for _, pos := range positions {
			if !finite(pos[0], pos[1], pos[2]) ||
				pos[0] < 0 || pos[0] > r.LxM || pos[1] < 0 || pos[1] > r.LyM || pos[2] < 0 || pos[2] > r.LzM {
				return fail("path.room position", pos)
			}
		}
	}
	if !finite(sp.AmbientSPL) || sp.AmbientSPL < 0 || sp.AmbientSPL > maxSpecSPL {
		return fail("ambient_spl", sp.AmbientSPL)
	}
	if sp.BlockSamples < 0 || sp.BlockSamples > maxSpecBlock {
		return fail("block_samples", sp.BlockSamples)
	}
	if g := sp.Guard.EmitEverySeconds; !finite(g) || g > maxSpecEmitEveryS {
		return fail("guard.emit_every_s", g)
	}
	return nil
}

// LoadSpec reads a JSON scenario from disk.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sim: reading spec: %w", err)
	}
	return ParseSpec(data)
}

// TapResult is one capture point's outcome.
type TapResult struct {
	// Label identifies the tap ("victim", "tap@5.0m", "mic@(x,y,z)").
	Label string
	// SPLAtDevice is the sound level that reached the microphone.
	SPLAtDevice float64
	// Verdicts holds the guard's interim verdicts in order.
	Verdicts []stream.Verdict
	// Final is the end-of-session verdict.
	Final stream.Verdict
	// Recording is the captured audio (nil unless KeepRecording).
	Recording *audio.Signal
}

// Result is a full scenario outcome.
type Result struct {
	Name        string
	Elements    int
	TotalPowerW float64
	Taps        []TapResult
}

// tapRunner is one capture point mid-run.
type tapRunner struct {
	label     string
	chain     *Chain
	probe     *Probe
	guard     *stream.Guard
	rec       []float64
	verdicts  []stream.Verdict
	scratch   []float64
	keep      bool
	onVerdict func(tap string, v stream.Verdict)
}

func (t *tapRunner) push(out []float64) {
	if v := t.guard.Push(out); v != nil {
		t.verdicts = append(t.verdicts, *v)
		if t.onVerdict != nil {
			t.onVerdict(t.label, *v)
		}
	}
	if t.keep {
		t.rec = append(t.rec, out...)
	}
}

// Sim is a compiled scenario ready to run: the emission source, the
// shared field conditioning and one capture chain + guard per tap.
type Sim struct {
	name        string
	src         Source
	pre         *Chain
	taps        []*tapRunner
	block       int
	adcRate     float64
	elements    int
	totalPowerW float64
}

// Build compiles the spec against a trained (or calibrated) detector.
// The detector is shared across all tap guards.
func (sp *Spec) Build(det defense.Detector) (*Sim, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if det == nil {
		det = defense.DemoThresholds()
	}
	dev, err := deviceFor(sp.Device)
	if err != nil {
		return nil, err
	}
	cmd, err := voice.Synthesize(sp.Text, voice.DefaultVoice(), 48000)
	if err != nil {
		return nil, fmt.Errorf("sim: synthesising %q: %w", sp.Text, err)
	}
	o := Options{BlockSamples: sp.BlockSamples}

	src, rate, elements, totalPowerW, err := sp.Attack.source(cmd, o)
	if err != nil {
		return nil, err
	}
	if rate < 2*dev.LPFCutoffHz {
		return nil, fmt.Errorf("sim: source rate %v too low for device cutoff %v", rate, dev.LPFCutoffHz)
	}

	// Shared field conditioning: the attacker's power schedule.
	var pre []Stage
	if len(sp.Attack.ScheduleDB) > 0 {
		pre = append(pre, VarGainStage(rate, scheduleGain(sp.Attack.ScheduleDB)))
	}

	seed := sp.Seed
	if seed == 0 {
		seed = 1
	}
	emitEvery := emitFrames(sp.Guard.EmitEverySeconds)

	s := &Sim{
		name:        sp.Name,
		src:         src,
		pre:         Compile(o, pre...),
		block:       o.Block(),
		adcRate:     dev.ADCRate,
		elements:    elements,
		totalPowerW: totalPowerW,
	}

	addTap := func(label string, pathStages []Stage, tapIdx int) {
		rng := rand.New(rand.NewSource(seed*1_000_003 + int64(tapIdx)))
		probe := NewProbe()
		stages := append([]Stage{}, pathStages...)
		if sp.AmbientSPL > 0 {
			stages = append(stages, AmbientStage(rng, sp.AmbientSPL))
		}
		stages = append(stages, probe)
		stages = append(stages, MicStages(dev, rng, rate, Streaming, o)...)
		s.taps = append(s.taps, &tapRunner{
			label: label,
			chain: Compile(o, stages...),
			probe: probe,
			guard: stream.NewGuard(stream.GuardConfig{
				Rate:      dev.ADCRate,
				Detector:  det,
				EmitEvery: emitEvery,
			}),
			keep: sp.Guard.KeepRecording,
		})
	}

	duration := cmd.Duration() // session length in seconds (source preserves it)
	if r := sp.Path.Room; r != nil {
		room := acoustics.Room{Lx: r.LxM, Ly: r.LyM, Lz: r.LzM, Reflection: r.Reflection, Air: acoustics.DefaultAir()}
		atk := pos(r.Attacker)
		// The room's multipath carries the start-position spreading, so
		// the motion correction is relative to the start distance.
		d0 := atk.Distance(pos(r.Victim))
		motion := sp.motionStages(d0, d0, rate, duration)
		addTap("victim", append(motion, RoomStages(room, atk, pos(r.Victim), rate, Streaming, o)...), 0)
		for i, m := range r.ExtraMics {
			label := fmt.Sprintf("mic@(%.1f,%.1f,%.1f)", m[0], m[1], m[2])
			addTap(label, RoomStages(room, atk, pos(m), rate, Streaming, o), i+1)
		}
	} else {
		d := sp.Path.DistanceM
		if d <= 0 {
			return nil, fmt.Errorf("sim: spec needs path.distance_m or path.room")
		}
		addTap("victim", sp.freeFieldStages(d, rate, duration, o), 0)
		for i, td := range sp.Path.ExtraTapsM {
			addTap(fmt.Sprintf("tap@%.1fm", td), PathStages(acoustics.Path{Distance: td, Air: acoustics.DefaultAir()}, rate, Streaming, o), i+1)
		}
	}
	return s, nil
}

// freeFieldStages builds the victim's free-field path, including the
// moving-source modulation when requested.
func (sp *Spec) freeFieldStages(d, rate, duration float64, o Options) []Stage {
	air := acoustics.DefaultAir()
	if sp.Path.MoveToM <= 0 || sp.Path.MoveToM == d {
		return PathStages(acoustics.Path{Distance: d, Air: air}, rate, Streaming, o)
	}
	d1 := sp.Path.MoveToM
	mid := (d + d1) / 2
	// PathStages carries the 1/mid spreading, so the motion correction is
	// relative to the midpoint distance.
	stages := sp.motionStages(d, mid, rate, duration)
	stages = append(stages, PathStages(acoustics.Path{Distance: mid, Air: air}, rate, Streaming, o)...)
	return stages
}

// motionStages returns the time-varying delay and spreading correction of
// a source moving linearly from d0 to MoveToM over the session. refDist
// is the distance whose static 1/refDist spreading the downstream path
// filter applies; the correction turns it into the true 1/d(t). Without
// motion it returns nil.
func (sp *Spec) motionStages(d0, refDist, rate, duration float64) []Stage {
	d1 := sp.Path.MoveToM
	if d1 <= 0 || d1 == d0 || duration <= 0 {
		return nil
	}
	c := acoustics.SpeedOfSound(acoustics.DefaultAir().TempC)
	dAt := func(t float64) float64 {
		frac := t / duration
		if frac > 1 {
			frac = 1
		}
		return d0 + (d1-d0)*frac
	}
	dmin := math.Min(d0, d1)
	maxDelay := (math.Max(d0, d1) - dmin) / c
	return []Stage{
		VarDelayStage(rate, maxDelay, func(t float64) float64 { return (dAt(t) - dmin) / c }),
		VarGainStage(rate, func(t float64) float64 { return refDist / dAt(t) }),
	}
}

// source builds the emission source and reports (source, rate, elements,
// total power).
func (a AttackSpec) source(cmd *audio.Signal, o Options) (Source, float64, int, float64, error) {
	switch a.Kind {
	case "baseline":
		bo := attack.DefaultBaselineOptions()
		if a.CarrierHz > 0 {
			bo.CarrierHz = a.CarrierHz
		}
		power := a.PowerW
		if power <= 0 {
			power = 18.7
		}
		drive, err := attack.Baseline(cmd, bo)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		b := ElementBranch(speaker.FostexTweeter(), drive, power, Streaming, o)
		return MixSources(b), bo.Rate, 1, power, nil
	case "longrange":
		lo := attack.DefaultLongRangeOptions()
		if a.CarrierHz > 0 {
			lo.CarrierHz = a.CarrierHz
		}
		if a.Segments > 0 {
			lo.NumSegments = a.Segments
		}
		power := a.PowerW
		if power <= 0 {
			power = 300
		}
		plan, err := attack.LongRange(cmd, power, lo)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		src, elements := LongRangeSource(plan, speaker.UltrasonicElement, Streaming, o)
		if src == nil {
			return nil, 0, 0, 0, fmt.Errorf("sim: long-range plan drove no elements")
		}
		return src, lo.Rate, elements, plan.TotalPowerW(), nil
	case "voice":
		spl := a.VoiceSPL
		if spl <= 0 {
			spl = 66
		}
		field := cmd.Clone()
		field.NormalizeRMS(acoustics.PressureFromSPL(spl))
		return SignalSource(field), field.Rate, 0, 0, nil
	default:
		return nil, 0, 0, 0, fmt.Errorf("sim: unknown attack kind %q", a.Kind)
	}
}

// OnVerdict registers a callback receiving every interim verdict as it
// is emitted, labelled by tap — live monitoring during Run.
func (s *Sim) OnVerdict(fn func(tap string, v stream.Verdict)) {
	for _, t := range s.taps {
		t.onVerdict = fn
	}
}

// Run executes the compiled scenario: the emission streams block by
// block through every tap's capture chain into its guard session, in
// bounded memory (unless recordings are kept).
func (s *Sim) Run() *Result {
	buf := make([]float64, s.block)
	for {
		n := s.src.Read(buf)
		if n == 0 {
			break
		}
		s.feed(s.pre.Process(buf[:n]))
	}
	s.feed(s.pre.Flush())
	res := &Result{Name: s.name, Elements: s.elements, TotalPowerW: s.totalPowerW}
	for _, t := range s.taps {
		t.push(t.chain.Flush())
		final := t.guard.Finalize()
		tr := TapResult{
			Label:       t.label,
			SPLAtDevice: acoustics.SPL(t.probe.RMS()),
			Verdicts:    t.verdicts,
			Final:       final,
		}
		if t.keep {
			tr.Recording = audio.FromSamples(s.adcRate, t.rec)
		}
		res.Taps = append(res.Taps, tr)
	}
	return res
}

// feed fans one conditioned field block out to every tap.
func (s *Sim) feed(block []float64) {
	if len(block) == 0 {
		return
	}
	for _, t := range s.taps {
		if cap(t.scratch) < len(block) {
			t.scratch = make([]float64, len(block))
		}
		sc := t.scratch[:len(block)]
		copy(sc, block)
		t.push(t.chain.Process(sc))
	}
}

// SimulateSpec compiles and runs a scenario in one call.
func SimulateSpec(sp *Spec, det defense.Detector) (*Result, error) {
	s, err := sp.Build(det)
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}

// RunVerbose runs the scenario with every interim verdict streamed to w
// as it is emitted, then writes the per-tap report — the shared flow
// behind `cmd/simulate -spec` and examples/live_attack_sim.
func (s *Sim) RunVerbose(w io.Writer) *Result {
	s.OnVerdict(func(tap string, v stream.Verdict) {
		fmt.Fprintf(w, "[%s] %v\n", tap, v)
	})
	res := s.Run()
	res.WriteReport(w)
	return res
}

// WriteReport prints the rig summary and each tap's SPL, final verdict
// and latency statistics.
func (r *Result) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "rig: %d element(s), %.1f W total\n", r.Elements, r.TotalPowerW)
	for _, tap := range r.Taps {
		fmt.Fprintf(w, "[%s] at device: %.1f dB SPL\n", tap.Label, tap.SPLAtDevice)
		fmt.Fprintf(w, "[%s] %v\n", tap.Label, tap.Final)
		fmt.Fprintf(w, "[%s] %v\n", tap.Label, tap.Final.Latency)
	}
}

// pos converts a spec coordinate triple to a room position.
func pos(p [3]float64) acoustics.Position {
	return acoustics.Position{X: p[0], Y: p[1], Z: p[2]}
}

// deviceFor maps a spec device name to its profile.
func deviceFor(name string) (*mic.Device, error) {
	switch name {
	case "", "phone":
		return mic.AndroidPhone(), nil
	case "echo":
		return mic.AmazonEcho(), nil
	case "reference":
		return mic.ReferenceMic(), nil
	default:
		return nil, fmt.Errorf("sim: unknown device %q", name)
	}
}

// emitFrames converts the interim cadence to guard frames (20 ms each).
func emitFrames(seconds float64) int {
	if seconds < 0 {
		return 0
	}
	if seconds == 0 {
		seconds = 0.5
	}
	frames := int(math.Round(seconds / 0.020))
	if frames < 1 {
		frames = 1
	}
	return frames
}

// scheduleGain interpolates the piecewise-linear dB schedule.
func scheduleGain(points []SchedulePoint) func(t float64) float64 {
	return func(t float64) float64 {
		if len(points) == 0 {
			return 1
		}
		if t <= points[0].AtSeconds {
			return dbGain(points[0].GainDB)
		}
		for i := 1; i < len(points); i++ {
			if t <= points[i].AtSeconds {
				p0, p1 := points[i-1], points[i]
				span := p1.AtSeconds - p0.AtSeconds
				if span <= 0 {
					return dbGain(p1.GainDB)
				}
				frac := (t - p0.AtSeconds) / span
				return dbGain(p0.GainDB + (p1.GainDB-p0.GainDB)*frac)
			}
		}
		return dbGain(points[len(points)-1].GainDB)
	}
}

// dbGain converts decibels (amplitude) to a linear factor.
func dbGain(db float64) float64 { return math.Pow(10, db/20) }
