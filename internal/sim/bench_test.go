package sim

import (
	"math/rand"
	"testing"

	"inaudible/internal/acoustics"
	"inaudible/internal/attack"
	"inaudible/internal/audio"
	"inaudible/internal/mic"
	"inaudible/internal/speaker"
	"inaudible/internal/voice"
)

// benchCaptureChain builds the full streaming capture chain (free-field
// path + ambient + device) at 192 kHz — the steady-state hop loop the
// guard sits behind.
func benchCaptureChain(o Options) *Chain {
	rng := rand.New(rand.NewSource(1))
	dev := mic.AndroidPhone()
	var stages []Stage
	stages = append(stages, PathStages(acoustics.Path{Distance: 5, Air: acoustics.DefaultAir()}, 192000, Streaming, o)...)
	stages = append(stages, AmbientStage(rng, 40))
	stages = append(stages, MicStages(dev, rng, 192000, Streaming, o)...)
	return Compile(o, stages...)
}

// BenchmarkSimChain measures the compiled streaming chain's steady-state
// block loop: one op is one 4096-sample block at 192 kHz through
// propagation, ambient noise, and the whole mic capture chain. The
// acceptance targets are 0 allocs/op and the x-realtime headroom metric.
func BenchmarkSimChain(b *testing.B) {
	o := Options{}
	c := benchCaptureChain(o)
	block := make([]float64, o.Block())
	field := speaker.FostexTweeter().Emit(amDrive(0.5), 18.7)
	copy(block, field.Samples)
	for i := 0; i < 64; i++ { // warm every stage staging buffer
		c.Process(block)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Process(block)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "blocks/sec")
	secPerBlock := float64(o.Block()) / 192000
	b.ReportMetric(secPerBlock*float64(b.N)/b.Elapsed().Seconds(), "x-realtime")
}

// benchLongRangeCmd is the 10 s command driving the batch-vs-chain
// comparison (synthesised once, padded to 10 s).
func benchLongRangeCmd() *audio.Signal {
	cmd := voice.MustSynthesize("alexa, play music", voice.DefaultVoice(), 48000)
	return cmd.PadTo(10)
}

// benchLongRangeOptions keeps the bench tractable: 12 spectrum slices
// (plus the spread carrier elements) instead of the paper's 60 — the
// same per-element work in both paths, so the ratio is representative.
func benchLongRangeOptions() attack.LongRangeOptions {
	o := attack.DefaultLongRangeOptions()
	o.NumSegments = 12
	return o
}

// BenchmarkScenarioBatchVsChain compares the seed batch pipeline against
// the compiled streaming chain on a 10 s long-range scenario: emission
// synthesis (per-element speaker physics), free-field propagation,
// ambient noise and mic capture. The attack plan design is shared and
// excluded from timing. Acceptance: chain >= 1.3x faster.
func BenchmarkScenarioBatchVsChain(b *testing.B) {
	cmd := benchLongRangeCmd()
	lo := benchLongRangeOptions()
	plan, err := attack.LongRange(cmd, 300, lo)
	if err != nil {
		b.Fatal(err)
	}
	drives := plan.ElementDrives(speaker.UltrasonicElement().MaxPowerW)

	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var field *audio.Signal
			for _, ed := range drives {
				em := speaker.UltrasonicElement().Emit(ed.Drive, ed.PowerW)
				if field == nil {
					field = em
					continue
				}
				for k := range field.Samples {
					field.Samples[k] += em.Samples[k]
				}
			}
			at := acoustics.Path{Distance: 5, Air: acoustics.DefaultAir()}.Propagate(field)
			rng := rand.New(rand.NewSource(1))
			noise := acoustics.AmbientNoise(rng, at.Rate, at.Duration(), 40)
			for k := range at.Samples {
				at.Samples[k] += noise.Samples[k]
			}
			rec := mic.AndroidPhone().Record(at, rng)
			if rec.Len() == 0 {
				b.Fatal("empty recording")
			}
		}
	})

	b.Run("chain", func(b *testing.B) {
		o := Options{}
		for i := 0; i < b.N; i++ {
			src, _ := LongRangeSource(plan, speaker.UltrasonicElement, Streaming, o)
			rng := rand.New(rand.NewSource(1))
			dev := mic.AndroidPhone()
			var stages []Stage
			stages = append(stages, PathStages(acoustics.Path{Distance: 5, Air: acoustics.DefaultAir()}, lo.Rate, Streaming, o)...)
			stages = append(stages, AmbientStage(rng, 40))
			stages = append(stages, MicStages(dev, rng, lo.Rate, Streaming, o)...)
			rec := RunSource(Compile(o, stages...), src, dev.ADCRate, o)
			if rec.Len() == 0 {
				b.Fatal("empty recording")
			}
		}
	})
}
