// Package inaudible is the public facade of the repository: a faithful
// reimplementation of "Inaudible Voice Commands: The Long-Range Attack and
// Defense" (NSDI 2018) over a fully simulated physical substrate (see
// DESIGN.md for the paper-to-module mapping and the mismatch note about
// the supplied paper text).
//
// The library covers both sides of the paper:
//
//   - Attack: converting a voice command into ultrasound that a victim
//     microphone's non-linearity demodulates back into voice — the
//     single-speaker baseline (range-capped by audible self-leakage) and
//     the multi-speaker long-range design (spectrum slices on separate
//     elements, leakage confined below the hearing threshold).
//   - Defense: trace features of non-linear demodulation (infra-voice
//     band energy, squared-envelope correlation, super-voice band energy)
//     and classifiers that detect injected commands.
//
// Quick start:
//
//	cmd := inaudible.MustSynthesize("ok google, take a picture")
//	scenario := inaudible.NewScenario()
//	emission, run, err := scenario.Simulate(cmd, inaudible.KindBaseline, 18.7, 3, 1)
//	rec := inaudible.NewRecognizer()
//	fmt.Println(rec.InjectionSuccess(run.Recording, "photo"), emission.LeakageAudible)
//
// The deeper layers are importable directly for research use:
// internal/dsp (kernels), internal/acoustics (propagation), internal/mic
// and internal/speaker (transducer chains), internal/attack and
// internal/defense (the paper's contribution), internal/core (end-to-end
// engine) and internal/experiment (the evaluation harness).
package inaudible

import (
	"fmt"
	"io"

	"inaudible/internal/asr"
	"inaudible/internal/attack"
	"inaudible/internal/audio"
	"inaudible/internal/core"
	"inaudible/internal/defense"
	"inaudible/internal/experiment"
	"inaudible/internal/fleet"
	"inaudible/internal/mic"
	"inaudible/internal/sim"
	"inaudible/internal/speaker"
	"inaudible/internal/stream"
	"inaudible/internal/telemetry"
	"inaudible/internal/voice"
)

// Re-exported core types. The aliases keep one import path for typical
// use while the internal packages stay the source of truth.
type (
	// Signal is a mono sampled waveform (see internal/audio).
	Signal = audio.Signal
	// Command is one entry of the closed command vocabulary.
	Command = voice.Command
	// Profile describes a synthetic talker.
	Profile = voice.Profile
	// Scenario fixes a victim device and environment.
	Scenario = core.Scenario
	// Emission is a cached attacker output with audibility metadata.
	Emission = core.Emission
	// RunResult is one delivery of an emission to the victim.
	RunResult = core.RunResult
	// AttackKind selects baseline or long-range.
	AttackKind = core.AttackKind
	// Recognizer is the template ASR substrate.
	Recognizer = asr.Recognizer
	// Features is the defense feature vector.
	Features = defense.Features
	// BaselineOptions parameterises the single-speaker attack.
	BaselineOptions = attack.BaselineOptions
	// LongRangeOptions parameterises the multi-speaker attack.
	LongRangeOptions = attack.LongRangeOptions
	// Device is a victim microphone profile.
	Device = mic.Device
	// Speaker is an emitting element profile.
	Speaker = speaker.Speaker
	// ExperimentOptions scales the E1-E13 evaluation suite: Quick grids,
	// the scenario Seed, and the Parallel worker-pool size (0 = all
	// cores, 1 = serial; output is byte-identical either way).
	ExperimentOptions = experiment.Options
	// ExperimentSuite caches the expensive shared evaluation assets
	// across experiments.
	ExperimentSuite = experiment.Suite
	// Detector is the common decision surface of the trained defenses
	// (LinearSVM, LogisticRegression, ThresholdDetector).
	Detector = defense.Detector
	// StreamAnalyzer computes defense features incrementally over a
	// session, with documented parity to ExtractFeatures.
	StreamAnalyzer = stream.Analyzer
	// StreamGuard is one always-on defense session: online VAD +
	// streaming feature analyzer + a shared Detector.
	StreamGuard = stream.Guard
	// GuardConfig parameterises a streaming guard session.
	GuardConfig = stream.GuardConfig
	// GuardVerdict is a streaming guard's detection event.
	GuardVerdict = stream.Verdict
	// GuardServer serves concurrent guard sessions over byte streams
	// (the engine behind cmd/guardd), on the sharded fleet core.
	GuardServer = stream.Server
	// GuardServerConfig parameterises the concurrent serving layer
	// (shards, admission cap, degradation, ring depth, telemetry).
	GuardServerConfig = stream.ServerConfig
	// GuardFleet is the sharded serving core: per-shard worker
	// goroutines, SPSC frame rings, session-affinity routing, explicit
	// admission control.
	GuardFleet = fleet.Fleet
	// GuardSession is one admitted fleet session: a producer-side
	// handle over the session's frame ring and verdict event stream.
	GuardSession = fleet.Session
	// MetricsRegistry collects the serving-side telemetry (counters,
	// gauges, latency histograms) with Prometheus text exposition.
	MetricsRegistry = telemetry.Registry
	// SimStage is one block-processing element of a simulation chain.
	SimStage = sim.Stage
	// SimChain is a compiled block-processing pipeline of physical
	// stages (speaker drive -> air/room -> diaphragm -> mic), fused and
	// allocation-free in steady state.
	SimChain = sim.Chain
	// SimOptions tunes chain compilation (block size, FIR design length).
	SimOptions = sim.Options
	// SimSpec is a declarative end-to-end scenario (JSON): attack rig,
	// environment, motion, power schedule, capture taps.
	SimSpec = sim.Spec
	// SimResult is a scenario outcome: per-tap guard verdicts, SPL and
	// optional recordings.
	SimResult = sim.Result
	// SimAttackSpec selects and parameterises a spec's emission source.
	SimAttackSpec = sim.AttackSpec
	// SimPathSpec describes a spec's propagation and capture geometry.
	SimPathSpec = sim.PathSpec
	// SweepAxis is one named dimension of a sweep grid (distance, power,
	// carrier, ...), built with ParseSweepAxis or the experiment package's
	// axis constructors.
	SweepAxis = experiment.Axis
	// ExperimentReport is one evaluated experiment: tables and notes in
	// render order, with Render/CSV forms and cache traffic counters.
	ExperimentReport = experiment.Report
	// TrialCache is the content-addressed trial-result cache shared by a
	// suite's experiments (hit/miss stats, optional on-disk layer).
	TrialCache = experiment.Cache
)

// Attack kinds.
const (
	KindBaseline  = core.KindBaseline
	KindLongRange = core.KindLongRange
)

// Vocabulary returns the supported command set.
func Vocabulary() []Command { return voice.Vocabulary() }

// Synthesize renders a command text with the default voice at 48 kHz.
func Synthesize(text string) (*Signal, error) {
	return voice.Synthesize(text, voice.DefaultVoice(), 48000)
}

// MustSynthesize is Synthesize for known-good vocabulary text.
func MustSynthesize(text string) *Signal {
	return voice.MustSynthesize(text, voice.DefaultVoice(), 48000)
}

// NewScenario returns the paper's default setup: Android phone victim in
// a quiet meeting room, bystander at 1.5 m from the rig.
func NewScenario() *Scenario { return core.DefaultScenario() }

// NewRecognizer returns the experiment recogniser (vocabulary templates
// with demodulation-channel augmentation).
func NewRecognizer() *Recognizer { return core.NewRecognizer(voice.DefaultVoice()) }

// BaselineAttack designs the single-speaker attack waveform with the
// paper's published parameters (192 kHz, fc = 30 kHz, 8 kHz baseband).
func BaselineAttack(cmd *Signal) (*Signal, error) {
	return attack.Baseline(cmd, attack.DefaultBaselineOptions())
}

// LongRangeAttack builds the multi-speaker plan at the given total power.
func LongRangeAttack(cmd *Signal, totalPowerW float64) (*attack.Plan, error) {
	return attack.LongRange(cmd, totalPowerW, attack.DefaultLongRangeOptions())
}

// ExtractFeatures computes the defense features of a recording.
func ExtractFeatures(rec *Signal) Features { return defense.Extract(rec) }

// ExtractFeaturesStreaming computes the same features frame by frame in
// bounded memory (see internal/stream for the parity contract).
func ExtractFeaturesStreaming(rec *Signal) Features { return stream.Extract(rec, 0) }

// TrainDetector simulates the default labelled corpus at the given seed
// and trains the named detector kind: "svm", "logistic" or "threshold".
// quick shrinks the corpus grid for fast start-up (demos, tests).
func TrainDetector(kind string, seed int64, quick bool) (Detector, error) {
	sc := core.DefaultScenario()
	sc.Seed = seed
	cfg := experiment.DefaultCorpusConfig(sc)
	if quick {
		cfg = experiment.QuickCorpusConfig(cfg)
	}
	cfg.Runner = experiment.NewRunner(0)
	return experiment.TrainDetector(kind, cfg, seed)
}

// NewStreamGuard returns an online guard session at the given sample
// rate, backed by a trained detector; one detector may back any number
// of concurrent guards. Feed audio with Push, close the session with
// Finalize.
func NewStreamGuard(det Detector, rate float64) *StreamGuard {
	return stream.NewGuard(stream.GuardConfig{Rate: rate, Detector: det})
}

// NewGuardServer returns the concurrent session server used by
// cmd/guardd, built on the sharded fleet core: admission control with
// backpressure or graceful degradation, per-shard session affinity, and
// a zero-alloc per-frame path.
func NewGuardServer(cfg GuardServerConfig) *GuardServer { return stream.NewServer(cfg) }

// NewGuardFleet returns the bare sharded serving core a GuardServer
// runs on — sessions in, verdict events out, no wire framing — for
// in-process serving, load generation and capacity benchmarks.
func NewGuardFleet(cfg GuardServerConfig) *GuardFleet { return stream.NewFleet(cfg) }

// NewMetricsRegistry returns an empty telemetry registry. Pass it as
// GuardServerConfig.Metrics to register the fleet's instruments, and
// expose it with ServeMetrics.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// ServeMetrics serves a registry's /metrics (Prometheus text), /varz
// (JSON) and /healthz endpoints on addr in the background, returning
// the bound listener address (useful with ":0").
func ServeMetrics(addr string, r *MetricsRegistry) (string, error) {
	l, _, err := telemetry.ListenAndServe(addr, r)
	if err != nil {
		return "", err
	}
	return l.Addr().String(), nil
}

// NewSimChain compiles the scenario's capture pipeline (air, ambient
// noise, victim device) as a bounded-memory streaming chain for a field
// at the given sample rate: push pressure blocks in, receive the digital
// recording out, e.g. straight into a StreamGuard. The same chain
// compiled in exact mode is what Deliver runs internally.
func NewSimChain(s *Scenario, rate, distance float64, trial int64) *SimChain {
	ch, _ := s.DeliveryChain(rate, distance, trial, sim.Streaming, sim.Options{})
	return ch
}

// LoadSimSpec reads a declarative scenario from a JSON file.
func LoadSimSpec(path string) (*SimSpec, error) { return sim.LoadSpec(path) }

// SimulateSpec compiles and runs a declarative scenario end to end —
// attack synthesis, per-element speaker chains, room/air propagation,
// mic capture, streaming guard verdicts — in bounded memory. A nil
// detector selects the hand-calibrated demo thresholds; pass a trained
// Detector for evaluated defenses.
func SimulateSpec(sp *SimSpec, det Detector) (*SimResult, error) {
	return sim.SimulateSpec(sp, det)
}

// AndroidPhone, AmazonEcho and ReferenceMic re-export the device profiles.
func AndroidPhone() *Device { return mic.AndroidPhone() }

// AmazonEcho returns the Echo device profile.
func AmazonEcho() *Device { return mic.AmazonEcho() }

// ReferenceMic returns the perfectly linear control microphone.
func ReferenceMic() *Device { return mic.ReferenceMic() }

// Experiments lists the evaluation suite's experiment ids (E1..E13) in
// run order.
func Experiments() []string { return experiment.IDs() }

// NewExperimentSuite returns the evaluation suite configured by opt.
func NewExperimentSuite(opt ExperimentOptions) *ExperimentSuite {
	return experiment.NewSuite(opt)
}

// RunExperiment runs one experiment of the E1-E13 suite, writing its
// tables to w.
func RunExperiment(id string, w io.Writer, opt ExperimentOptions) error {
	return experiment.NewSuite(opt).Run(id, w)
}

// RunAll regenerates the paper's full evaluation (E1..E13 in order),
// writing every table to w. Trials fan out across opt.Parallel workers
// (0 = all cores) and flow through the suite's content-addressed trial
// cache, so cells shared between experiments are delivered once per
// run (and once ever with opt.CacheDir). The rendered output is
// byte-identical for any pool size at a fixed opt.Seed, cache cold or
// warm.
func RunAll(w io.Writer, opt ExperimentOptions) error {
	s := experiment.NewSuite(opt)
	for _, id := range experiment.IDs() {
		fmt.Fprintf(w, "\n######## %s — %s\n", id, experiment.Describe(id))
		if err := s.Run(id, w); err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
	}
	return nil
}

// SweepOptions configures a custom spec-driven sweep (RunSweep).
type SweepOptions struct {
	// Axes are the swept spec fields; build them with ParseSweepAxis
	// ("distance=1:15:1", "power=100,300") or the experiment package's
	// axis constructors.
	Axes []SweepAxis
	// Detector scores each cell's recording; nil selects the
	// hand-calibrated demo thresholds.
	Detector Detector
	// Parallel is the worker-pool size (0 = all cores, 1 = serial).
	Parallel int
}

// ParseSweepAxis parses one sweep-axis definition: an inclusive range
// `field=start:stop:step` or an explicit list `field=v1,v2,v3`, over
// the spec fields distance, move_to, power, voice_spl, carrier,
// segments, ambient, seed and device.
func ParseSweepAxis(def string) (SweepAxis, error) {
	return experiment.ParseSweepAxis(def)
}

// RunSweep turns any declarative scenario plus a sweep definition into
// a runnable experiment: every grid cell clones the spec, applies its
// axis values, runs the full simulation (attack synthesis, per-element
// speaker chains, propagation, capture, streaming guard) on the worker
// pool, and the per-cell outcomes render as one table to w.
func RunSweep(sp *SimSpec, w io.Writer, opt SweepOptions) error {
	return experiment.RunSpecSweep(sp, opt.Axes, opt.Detector, opt.Parallel, w)
}

// SweepReport is RunSweep returning the evaluated report (tables +
// CSV/JSON forms) instead of rendering text.
func SweepReport(sp *SimSpec, opt SweepOptions) (*ExperimentReport, error) {
	return experiment.SpecSweepReport(sp, opt.Axes, opt.Detector, opt.Parallel)
}
