#!/usr/bin/env bash
# bench_snapshot.sh — run the fleet benchmark set at a steady-state
# benchtime and emit a BENCH_prN.json skeleton on stdout, schema-
# consistent with the checked-in BENCH_pr*.json snapshots (pr / date /
# host / notes / benchmarks / acceptance).
#
# Usage: scripts/bench_snapshot.sh [PR_NUMBER] > BENCH_prN.json
#
# The benchtime matters: at short benchtimes (e.g. 5000x) the session
# rings never reach their steady backlog depth, so shard round sizes —
# and with them the column-batching and cache-locality dynamics — are
# unrepresentative, and run-to-run numbers can swing 2x. 20000x is the
# smallest benchtime we have found to be stable on a 1-core container.
# Notes and acceptance verdicts are left for a human: numbers without
# the workload context are not a snapshot.
#
# The cluster section (CLUSTER=0 to skip, CLUSTER_ONLY=1 to run just
# it) measures end-to-end sessions/sec over real TCP with loadgen:
# direct single node, then router in front of 1, 2 and 4 backends,
# recording the scaling curve, per-node occupancy, and the router
# overhead — and enforces the PR 9 gate (router-over-1-node within 10%
# of direct) as an exit code.
set -euo pipefail
cd "$(dirname "$0")/.."

PR="${1:-0}"
BENCHTIME="${BENCHTIME:-20000x}"
COUNT="${COUNT:-2}"
CLUSTER="${CLUSTER:-1}"
CLUSTER_ONLY="${CLUSTER_ONLY:-0}"
CLUSTER_EPOCH="${CLUSTER_EPOCH:-6s}"
CLUSTER_CLIENTS="${CLUSTER_CLIENTS:-4}"
CLUSTER_RUNS="${CLUSTER_RUNS:-3}"

host="$(go env GOHOSTARCH) $(go version | awk '{print $3}')"
if [ -r /proc/cpuinfo ]; then
	model=$(awk -F': ' '/model name/{print $2; exit}' /proc/cpuinfo)
	host="${model} ($(nproc) core), $(go version | awk '{print $3" "$4}')"
fi

raw=$(mktemp)
tmpd=$(mktemp -d)
grd_pids=()
cleanup() {
	for p in "${grd_pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
	wait 2>/dev/null || true
	rm -rf "$raw" "$tmpd"
}
trap cleanup EXIT

run_bench() { # pkg, bench regex
	go test "$1" -run '^$' -bench "$2" -benchtime "$BENCHTIME" -benchmem -timeout 30m -count "$COUNT" 2>&1 | tee -a "$raw" >&2
}

if [ "$CLUSTER_ONLY" != 1 ]; then
	echo "==> running benchmarks at -benchtime $BENCHTIME -count $COUNT" >&2
	run_bench ./internal/fleet 'BenchmarkFleetCoreFrame$'
	run_bench ./internal/stream 'BenchmarkFleetThroughput$'
	run_bench ./internal/stream 'BenchmarkFleetThroughputTraced$'
	run_bench ./internal/stream 'BenchmarkCascadeFleetThroughput'
	run_bench ./internal/dsp 'BenchmarkBatchedRFFT'
fi

# --- cluster scaling: loadgen over real TCP against direct node vs
# --- router-fronted 1/2/4 backends (CLUSTER=0 skips). Best-of-runs
# --- sessions/sec per topology; every run must finish with zero
# --- loadgen errors (no dropped verdicts).
cluster_json=""
if [ "$CLUSTER" = 1 ]; then
	cluster_json="$tmpd/cluster.json"
	echo "==> cluster scaling sweep (epoch $CLUSTER_EPOCH x$CLUSTER_RUNS, $CLUSTER_CLIENTS clients)" >&2
	go build -o "$tmpd/" ./cmd/guardd ./cmd/loadgen

	wait_healthz() { # metrics base url
		for _ in $(seq 1 100); do
			curl -sf "$1/healthz" >/dev/null 2>&1 && return 0
			sleep 0.1
		done
		echo "timed out waiting for $1/healthz" >&2
		return 1
	}

	measure() { # session addr -> "best sessions/sec" and "that run's p99 ms"
		local addr=$1 best=0 bp99=0 s p99
		for _ in $(seq 1 "$CLUSTER_RUNS"); do
			"$tmpd/loadgen" -addr "$addr" -synth cheap -session-seconds 0.5 \
				-sessions "$CLUSTER_CLIENTS" -duration "$CLUSTER_EPOCH" \
				-quiet -json "$tmpd/lg.json" >/dev/null
			read -r s p99 <<<"$(python3 -c 'import json,sys
ep = json.load(open(sys.argv[1]))["epochs"][0]
assert ep["errors"] == 0, "loadgen epoch had errors: %r" % ep
print(ep["sessions_per_sec"], ep["verdict_p99_ms"])' "$tmpd/lg.json")"
			if python3 -c "import sys; sys.exit(0 if $s > $best else 1)"; then
				best=$s bp99=$p99
			fi
		done
		echo "$best $bp99"
	}

	# Four backends, up for the whole sweep; idle ones cost nothing.
	# n1 also serves GRD1 directly on :17701 for the baseline.
	for i in 1 2 3 4; do
		"$tmpd/guardd" -detector demo -listen "127.0.0.1:$((17700 + i))" \
			-cluster-node "127.0.0.1:$((17800 + i))" \
			-metrics "127.0.0.1:$((17900 + i))" -node "n$i" -drain 5s \
			>"$tmpd/n$i.log" 2>&1 &
		grd_pids+=($!)
	done
	for i in 1 2 3 4; do wait_healthz "http://127.0.0.1:$((17900 + i))"; done

	read -r direct direct_p99 <<<"$(measure "127.0.0.1:17701")"
	echo "    direct 1 node: $direct sessions/sec (p99 ${direct_p99}ms)" >&2

	declare -A routed routed_p99
	for n in 1 2 4; do
		nodes="127.0.0.1:17801"
		[ "$n" -ge 2 ] && nodes="$nodes,127.0.0.1:17802"
		[ "$n" -ge 4 ] && nodes="$nodes,127.0.0.1:17803,127.0.0.1:17804"
		"$tmpd/guardd" -route "$nodes" -listen 127.0.0.1:17650 \
			-metrics 127.0.0.1:17651 -node rt -drain 5s \
			>"$tmpd/rt$n.log" 2>&1 &
		rt_pid=$!
		grd_pids+=($rt_pid)
		wait_healthz "http://127.0.0.1:17651"
		read -r "routed[$n]" "routed_p99[$n]" <<<"$(measure "127.0.0.1:17650")"
		echo "    router -> $n node(s): ${routed[$n]} sessions/sec (p99 ${routed_p99[$n]}ms)" >&2
		curl -s "http://127.0.0.1:17651/cluster" >"$tmpd/occupancy$n.json"
		kill "$rt_pid" && wait "$rt_pid" 2>/dev/null || true
	done

	gate=0
	python3 - "$cluster_json" "$direct" "$direct_p99" \
		"${routed[1]}" "${routed_p99[1]}" "${routed[2]}" "${routed_p99[2]}" \
		"${routed[4]}" "${routed_p99[4]}" "$tmpd" <<'EOF' || gate=$?
import json, sys

out_path = sys.argv[1]
direct, dp99, r1, p1, r2, p2, r4, p4 = (float(x) for x in sys.argv[2:10])
tmpd = sys.argv[10]
overhead = (direct - r1) / direct

def occupancy(n):
    view = json.load(open(f"{tmpd}/occupancy{n}.json"))
    return {nd["addr"]: nd["finished_total"] for nd in view["nodes"]}

frag = {
    "workload": "loadgen -synth cheap -session-seconds 0.5, best-of-runs sessions/sec, zero errors required",
    "direct_1node_sessions_per_sec": direct,
    "router_sessions_per_sec": {"1": r1, "2": r2, "4": r4},
    "router_overhead_frac_vs_direct": round(overhead, 4),
    "verdict_p99_ms": {"direct": dp99, "1": p1, "2": p2, "4": p4},
    "router_p99_added_ms_vs_direct": round(p1 - dp99, 2),
    "scaling_vs_router_1node": {"2": round(r2 / r1, 3), "4": round(r4 / r1, 3)},
    "occupancy_sessions_finished": {str(n): occupancy(n) for n in (1, 2, 4)},
}
json.dump(frag, open(out_path, "w"), indent=2)
print(f"    router overhead vs direct: {overhead:+.1%} (gate: <= 10%)", file=sys.stderr)
sys.exit(0 if overhead <= 0.10 else 3)
EOF
	for p in "${grd_pids[@]}"; do kill "$p" 2>/dev/null || true; done
	wait 2>/dev/null || true
	grd_pids=()
	if [ "$gate" -ne 0 ]; then
		echo "FAIL: router overhead above the 10% gate" >&2
		exit 1
	fi
fi

# Best-of-count per benchmark (min ns/op: least scheduler noise on a
# shared host), keyed by the trimmed benchmark name. The cluster
# fragment, when measured, is embedded under "cluster".
python3 - "$raw" "$PR" "$host" "$cluster_json" <<'EOF'
import json, os, re, sys

raw, pr, host, cluster_path = open(sys.argv[1]).read(), int(sys.argv[2]), sys.argv[3], sys.argv[4]
best = {}
for line in raw.splitlines():
    m = re.match(r'^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(.*)', line)
    if not m:
        continue
    name, ns, rest = m.group(1), float(m.group(2)), m.group(3)
    if name not in best or ns < best[name]["ns_per_op"]:
        entry = {"ns_per_op": ns}
        for val, unit in re.findall(r'([\d.]+)\s+(\S+)', rest):
            if unit in ("rt_sessions", "frames/sec", "allocs/op", "B/op"):
                key = {"rt_sessions": "rt_sessions_per_core",
                       "frames/sec": "frames_per_sec",
                       "allocs/op": "allocs_per_frame",
                       "B/op": "bytes_per_op"}[unit]
                entry[key] = float(val) if "." in val else int(val)
        best[name] = entry

out = {
    "pr": pr,
    "date": "FILL_ME (UTC date of the run)",
    "host": host,
    "notes": "FILL_ME: workload context, gates, and anything surprising.",
    "benchmarks": best,
    "acceptance": {"FILL_ME": "per-PR gate verdicts"},
}
if cluster_path and os.path.exists(cluster_path):
    out["cluster"] = json.load(open(cluster_path))
json.dump(out, sys.stdout, indent=2)
print()
EOF
