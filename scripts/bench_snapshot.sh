#!/usr/bin/env bash
# bench_snapshot.sh — run the fleet benchmark set at a steady-state
# benchtime and emit a BENCH_prN.json skeleton on stdout, schema-
# consistent with the checked-in BENCH_pr*.json snapshots (pr / date /
# host / notes / benchmarks / acceptance).
#
# Usage: scripts/bench_snapshot.sh [PR_NUMBER] > BENCH_prN.json
#
# The benchtime matters: at short benchtimes (e.g. 5000x) the session
# rings never reach their steady backlog depth, so shard round sizes —
# and with them the column-batching and cache-locality dynamics — are
# unrepresentative, and run-to-run numbers can swing 2x. 20000x is the
# smallest benchtime we have found to be stable on a 1-core container.
# Notes and acceptance verdicts are left for a human: numbers without
# the workload context are not a snapshot.
set -euo pipefail
cd "$(dirname "$0")/.."

PR="${1:-0}"
BENCHTIME="${BENCHTIME:-20000x}"
COUNT="${COUNT:-2}"

host="$(go env GOHOSTARCH) $(go version | awk '{print $3}')"
if [ -r /proc/cpuinfo ]; then
	model=$(awk -F': ' '/model name/{print $2; exit}' /proc/cpuinfo)
	host="${model} ($(nproc) core), $(go version | awk '{print $3" "$4}')"
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

run_bench() { # pkg, bench regex
	go test "$1" -run '^$' -bench "$2" -benchtime "$BENCHTIME" -benchmem -timeout 30m -count "$COUNT" 2>&1 | tee -a "$raw" >&2
}

echo "==> running benchmarks at -benchtime $BENCHTIME -count $COUNT" >&2
run_bench ./internal/fleet 'BenchmarkFleetCoreFrame$'
run_bench ./internal/stream 'BenchmarkFleetThroughput$'
run_bench ./internal/stream 'BenchmarkFleetThroughputTraced$'
run_bench ./internal/stream 'BenchmarkCascadeFleetThroughput'
run_bench ./internal/dsp 'BenchmarkBatchedRFFT'

# Best-of-count per benchmark (min ns/op: least scheduler noise on a
# shared host), keyed by the trimmed benchmark name.
python3 - "$raw" "$PR" "$host" <<'EOF'
import json, re, sys

raw, pr, host = open(sys.argv[1]).read(), int(sys.argv[2]), sys.argv[3]
best = {}
for line in raw.splitlines():
    m = re.match(r'^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(.*)', line)
    if not m:
        continue
    name, ns, rest = m.group(1), float(m.group(2)), m.group(3)
    if name not in best or ns < best[name]["ns_per_op"]:
        entry = {"ns_per_op": ns}
        for val, unit in re.findall(r'([\d.]+)\s+(\S+)', rest):
            if unit in ("rt_sessions", "frames/sec", "allocs/op", "B/op"):
                key = {"rt_sessions": "rt_sessions_per_core",
                       "frames/sec": "frames_per_sec",
                       "allocs/op": "allocs_per_frame",
                       "B/op": "bytes_per_op"}[unit]
                entry[key] = float(val) if "." in val else int(val)
        best[name] = entry

out = {
    "pr": pr,
    "date": "FILL_ME (UTC date of the run)",
    "host": host,
    "notes": "FILL_ME: workload context, gates, and anything surprising.",
    "benchmarks": best,
    "acceptance": {"FILL_ME": "per-PR gate verdicts"},
}
json.dump(out, sys.stdout, indent=2)
print()
EOF
