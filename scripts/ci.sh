#!/usr/bin/env bash
# CI gate: build, vet, race-enabled short tests, full tests, short
# benchmarks. Mirrors what a reviewer should run before merging.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go build"
go build ./...

echo "==> go vet"
go vet ./...

echo "==> go test -race -short (runner + cache + kernel race coverage)"
go test -race -short -timeout 20m ./...

echo "==> go test -race (streaming guard + fleet: concurrent sessions, churn, SPSC ring)"
go test -race -timeout 20m ./internal/stream ./internal/fleet ./internal/telemetry

echo "==> go test (full suite, incl. E1-E13 golden cold/warm/parallel pins)"
go test -timeout 40m ./...

echo "==> fuzz smoke (WAV decoder + spec loader + GRD1 framing)"
go test ./internal/audio -run '^$' -fuzz FuzzWAVReader -fuzztime 10s
go test ./internal/sim -run '^$' -fuzz FuzzSpecLoader -fuzztime 10s
# -fuzzminimizetime 100x: exec-bounded minimization; the default
# time-based budget can eat the whole -fuzztime on a slow runner.
go test ./internal/stream -run '^$' -fuzz FuzzGRD1Framing -fuzztime 10s -fuzzminimizetime 100x
go test ./internal/dsp -run '^$' -fuzz FuzzBatchedRFFT -fuzztime 10s -fuzzminimizetime 100x
go test ./internal/journal -run '^$' -fuzz FuzzJournalSegmentDecoder -fuzztime 10s -fuzzminimizetime 100x

echo "==> short benchmarks (trial engine + sweep cache + FFT plan cache + stream guard + sim chain)"
go test ./internal/experiment -run '^$' -bench 'E5Serial|E5Parallel' -benchtime 1x -timeout 30m
go test ./internal/experiment -run '^$' -bench 'SuiteAllWarmCache|SweepCell' -benchtime 1x -timeout 40m
go test ./internal/dsp -run '^$' -bench 'FFT4096|RFFT4096' -benchtime 100x
go test . -run '^$' -bench 'StreamGuard|StreamFIRPush' -benchtime 200x -timeout 10m
go test ./internal/sim -run '^$' -bench 'BenchmarkSimChain$' -benchtime 100x -timeout 10m

echo "==> cascade parity / FN-budget gate (base + tier-0.5: zero added false negatives vs always-on guard)"
go test ./internal/stream -run 'TestCascadeCorpusParity' -count=1 -timeout 20m

echo "==> batched-path gates (column-batch verdict parity + 0 allocs/frame on the staged cycle)"
go test ./internal/stream -run 'TestColumnBatchParity|TestBatchedPathZeroAllocs' -count=1 -timeout 20m

echo "==> journal gates (zero-alloc SPSC handoff + crash recovery + replay parity)"
go test ./internal/journal -run 'TestSinkDropWhenFullAndZeroAlloc|TestTornTailRecovery|TestReplayParityAndDiff' -count=1 -timeout 10m
go test ./internal/stream -run 'TestJournaledSessionEndToEnd' -count=1 -timeout 10m

echo "==> fleet benchmarks (0 allocs/frame gate: see allocs/op in the output)"
go test ./internal/fleet -run '^$' -bench 'FleetCoreFrame' -benchtime 20000x -benchmem -timeout 10m
go test ./internal/stream -run '^$' -bench 'FleetThroughput$' -benchtime 5000x -benchmem -timeout 10m
go test ./internal/stream -run '^$' -bench 'FleetThroughputTraced' -benchtime 5000x -benchmem -timeout 10m
go test ./internal/stream -run '^$' -bench 'FleetThroughputJournaled' -benchtime 5000x -benchmem -timeout 10m
go test ./internal/stream -run '^$' -bench 'CascadeFleetThroughput' -benchtime 5000x -benchmem -timeout 10m

echo "==> loadgen smoke (in-process fleet server, cheap payloads, overload path)"
go run ./cmd/loadgen -synth cheap -detector demo -sessions 4 -duration 2s -session-seconds 0.5 -quiet
go run ./cmd/loadgen -synth cheap -detector demo -sessions 6 -max-sessions 2 -degrade -duration 2s -session-seconds 0.5 -quiet
go run ./cmd/loadgen -synth cheap -detector demo -sessions 4 -duration 2s -cascade -duty 0.25 -quiet

echo "==> introspection smoke (live guardd: burst of sessions, then guardctl check)"
go build -o /tmp/guardd-ci ./cmd/guardd
go build -o /tmp/guardctl-ci ./cmd/guardctl
/tmp/guardd-ci -detector demo -listen 127.0.0.1:7698 -metrics 127.0.0.1:7699 -cascade -emit-every 25 &
GUARDD_PID=$!
trap 'kill "$GUARDD_PID" 2>/dev/null || true' EXIT
for i in $(seq 1 50); do
	if curl -fsS http://127.0.0.1:7699/healthz >/dev/null 2>&1; then break; fi
	sleep 0.2
done
go run ./cmd/loadgen -addr 127.0.0.1:7698 -synth cheap -sessions 4 -duration 2s -session-seconds 0.5 -quiet >/dev/null
/tmp/guardctl-ci -base http://127.0.0.1:7699 check
# The flight recorder must have retained the burst's sessions.
/tmp/guardctl-ci -base http://127.0.0.1:7699 fleet | grep -q '"completed_total"'
kill "$GUARDD_PID" 2>/dev/null || true
wait "$GUARDD_PID" 2>/dev/null || true
trap - EXIT

echo "==> journal crash smoke (kill -9 mid-traffic: recover, zero corrupt records, bit-identical replay)"
go build -o /tmp/replay-ci ./cmd/replay
JDIR=$(mktemp -d /tmp/journal-ci.XXXXXX)
/tmp/guardd-ci -detector demo -listen 127.0.0.1:7741 -metrics 127.0.0.1:7742 -journal "$JDIR" -emit-every 25 &
GUARDD_PID=$!
trap 'kill -9 "$GUARDD_PID" 2>/dev/null || true; rm -rf "$JDIR"' EXIT
for i in $(seq 1 50); do
	if curl -fsS http://127.0.0.1:7742/healthz >/dev/null 2>&1; then break; fi
	sleep 0.2
done
# Burst in the background and kill -9 the daemon mid-traffic: the WAL
# may lose at most the torn tail, never a corrupt or out-of-order record.
go run ./cmd/loadgen -addr 127.0.0.1:7741 -synth cheap -sessions 4 -duration 4s -session-seconds 0.5 -quiet >/dev/null 2>&1 &
LOADGEN_PID=$!
sleep 2
kill -9 "$GUARDD_PID" 2>/dev/null || true
wait "$LOADGEN_PID" 2>/dev/null || true
/tmp/guardd-ci -detector demo -listen 127.0.0.1:7741 -metrics 127.0.0.1:7742 -journal "$JDIR" -emit-every 25 &
GUARDD_PID=$!
for i in $(seq 1 50); do
	if curl -fsS http://127.0.0.1:7742/healthz >/dev/null 2>&1; then break; fi
	sleep 0.2
done
# check now includes the journal-integrity leg: zero corrupt records
# and a sampled record decode, or it exits non-zero.
/tmp/guardctl-ci -base http://127.0.0.1:7742 check
# The restarted daemon must serve the pre-crash sessions.
/tmp/guardctl-ci -base http://127.0.0.1:7742 journal | python3 -c '
import json, sys
d = json.load(sys.stdin)
st = d["stats"]
assert st["corrupt_records_total"] == 0, st
assert st["recovered_records"] > 0 and len(d["sessions"]) > 0, st
seqs = [s["seq"] for s in d["sessions"]]
assert seqs == sorted(seqs, reverse=True), "listing out of order"
'
kill "$GUARDD_PID" 2>/dev/null || true
wait "$GUARDD_PID" 2>/dev/null || true
trap - EXIT
# Replay the recovered journal through the same demo detector: every
# surviving verdict must reproduce bit-for-bit.
/tmp/replay-ci -journal "$JDIR" -detector demo -verify
rm -rf "$JDIR" /tmp/replay-ci

echo "==> multi-node smoke (2 backends + router: burst, per-role check, drain, zero dropped verdicts)"
go build -o /tmp/loadgen-ci ./cmd/loadgen
CI_SMOKE_PIDS=()
/tmp/guardd-ci -detector demo -cluster-node 127.0.0.1:7711 -metrics 127.0.0.1:7712 -node n1 -drain 5s &
CI_SMOKE_PIDS+=($!)
/tmp/guardd-ci -detector demo -cluster-node 127.0.0.1:7721 -metrics 127.0.0.1:7722 -node n2 -drain 5s &
CI_SMOKE_PIDS+=($!)
/tmp/guardd-ci -route 127.0.0.1:7711,127.0.0.1:7721 -listen 127.0.0.1:7730 -metrics 127.0.0.1:7731 -node rt -drain 5s &
CI_SMOKE_PIDS+=($!)
trap 'for p in "${CI_SMOKE_PIDS[@]}"; do kill "$p" 2>/dev/null || true; done' EXIT
for port in 7712 7722 7731; do
	for i in $(seq 1 50); do
		if curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then break; fi
		sleep 0.2
	done
done
/tmp/loadgen-ci -addr 127.0.0.1:7730 -synth cheap -sessions 4 -duration 2s -session-seconds 0.5 -quiet -json /tmp/lg-cluster-ci.json >/dev/null
python3 -c 'import json; ep = json.load(open("/tmp/lg-cluster-ci.json"))["epochs"][0]; assert ep["errors"] == 0 and ep["completed"] > 0, ep'
# The observability plane must validate on every role: both backend
# nodes and the router (guardctl check adapts to what each mounts).
/tmp/guardctl-ci -base http://127.0.0.1:7712 check
/tmp/guardctl-ci -base http://127.0.0.1:7722 check
/tmp/guardctl-ci -base http://127.0.0.1:7731 check
/tmp/guardctl-ci -base http://127.0.0.1:7731 cluster >/tmp/cluster-view-ci.json
# Drain n1, push a second burst: every session must still get a final
# verdict (zero errors), with the drained node frozen out of rotation.
/tmp/guardctl-ci -base http://127.0.0.1:7731 drain 127.0.0.1:7711 >/dev/null
/tmp/loadgen-ci -addr 127.0.0.1:7730 -synth cheap -sessions 4 -duration 2s -session-seconds 0.5 -quiet -json /tmp/lg-cluster-ci.json >/dev/null
/tmp/guardctl-ci -base http://127.0.0.1:7731 cluster >/tmp/cluster-view-ci-drained.json
python3 - <<'EOF'
import json
ep = json.load(open("/tmp/lg-cluster-ci.json"))["epochs"][0]
assert ep["errors"] == 0 and ep["completed"] > 0, ep
before = {n["addr"]: n for n in json.load(open("/tmp/cluster-view-ci.json"))["nodes"]}
after = {n["addr"]: n for n in json.load(open("/tmp/cluster-view-ci-drained.json"))["nodes"]}
drained, other = after["127.0.0.1:7711"], after["127.0.0.1:7721"]
assert drained.get("draining"), "drain did not take"
assert drained["sessions_total"] == before["127.0.0.1:7711"]["sessions_total"], "drained node got new sessions"
assert other["finished_total"] > before["127.0.0.1:7721"]["finished_total"], "survivor took no sessions"
EOF
for p in "${CI_SMOKE_PIDS[@]}"; do kill "$p" 2>/dev/null || true; done
for p in "${CI_SMOKE_PIDS[@]}"; do wait "$p" 2>/dev/null || true; done
trap - EXIT
rm -f /tmp/guardd-ci /tmp/guardctl-ci /tmp/loadgen-ci /tmp/lg-cluster-ci.json /tmp/cluster-view-ci.json /tmp/cluster-view-ci-drained.json

echo "CI gate passed."
