#!/usr/bin/env bash
# CI gate: build, vet, race-enabled short tests, full tests, short
# benchmarks. Mirrors what a reviewer should run before merging.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go build"
go build ./...

echo "==> go vet"
go vet ./...

echo "==> go test -race -short (runner + kernel race coverage)"
go test -race -short -timeout 20m ./...

echo "==> go test -race (streaming guard: 8 concurrent sessions + server)"
go test -race -timeout 20m ./internal/stream ./internal/experiment

echo "==> go test (full suite)"
go test -timeout 30m ./...

echo "==> fuzz smoke (WAV decoder)"
go test ./internal/audio -run '^$' -fuzz FuzzWAVReader -fuzztime 10s

echo "==> short benchmarks (trial engine + FFT plan cache + stream guard + sim chain)"
go test ./internal/experiment -run '^$' -bench 'E5Serial|E5Parallel' -benchtime 1x -timeout 30m
go test ./internal/dsp -run '^$' -bench 'FFT4096|RFFT4096' -benchtime 100x
go test . -run '^$' -bench 'StreamGuard|StreamFIRPush' -benchtime 200x -timeout 10m
go test ./internal/sim -run '^$' -bench 'BenchmarkSimChain$' -benchtime 100x -timeout 10m

echo "CI gate passed."
